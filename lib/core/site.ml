open Avdb_sim
open Avdb_net
open Avdb_store
open Avdb_av
open Avdb_txn

let src_log = Logs.Src.create "avdb.site" ~doc:"site / accelerator"

module Log = (val Logs.src_log src_log : Logs.LOG)

type role = Maker | Retailer

type shared = {
  engine : Engine.t;
  rpc : (Protocol.request, Protocol.response, Protocol.notice) Rpc.t;
  config : Config.t;
  topology : Topology.t;
      (* per-item bases, interest sets and the AV hierarchy; one copy for
         the whole cluster *)
  mutable n_members : int;
      (* membership is dense (site i has address i), so one counter
         replaces the old address list — a join is O(1), not an O(N) list
         copy *)
  trace : Trace.t;
  tracer : Avdb_obs.Tracer.t;
}

type participant_txn = {
  p_txn : Database.txn;
  p_coordinator : Address.t;
  p_cohort : Address.t list;  (* everyone prepared, coordinator excluded *)
  p_item : string;
  p_delta : int;
  p_span : Avdb_obs.Span.id;  (* open from prepare until the decision *)
  mutable p_queries : int;  (* termination-protocol attempts so far *)
}

type coord = {
  machine : Two_phase.Coordinator.t;
  finish : Update.outcome -> unit;
  mutable local_txn : Database.txn option;
  mutable local_finalized : bool;
}

(* Outgoing lazy-propagation state for one item: the cumulative net local
   delta and the site-wide sequence number of its latest change. Mutable
   in place so the per-update hot path costs one hash lookup. *)
type item_sync = { mutable version : int; mutable cum : int }

(* Per-item epoch-quorum commit state. The durable truth lives in the
   protocol log (intent / promise / accept / seal / floor records); this
   is the in-memory working set a recovery rebuilds from it. *)
type epoch_item = {
  ei_item : string;
  mutable ei_subs : Address.t list;  (* all subscribers, self included *)
  mutable ei_subs_version : int;  (* topology version the memo is valid for *)
  mutable ei_applied : int;  (* highest contiguously applied (sealed) epoch *)
  ei_buffer : (int, Txn_log.intent) Hashtbl.t;
      (* unsealed intents known here — own writes plus forwarded ones;
         what the next seal this site proposes will contain *)
  ei_sealed : (int, unit) Hashtbl.t;  (* txids inside applied seals (dedup) *)
  ei_stash : (int, Txn_log.intent list) Hashtbl.t;
      (* seals received ahead of a gap, applied once the pull fills it *)
  ei_waiters : (int, Update.outcome -> unit) Hashtbl.t;
      (* own txid -> submitting client, woken when a seal lands locally *)
  ei_acked : (int, int) Hashtbl.t;
      (* subscriber -> applied epoch it acknowledged; commit re-broadcast
         targets only laggards *)
  mutable ei_attempts : int;
      (* pump ticks without progress on the open epoch; escalates the
         candidate rank (and with it the ballot) every few ticks *)
  mutable ei_pump : bool;  (* a pump tick is scheduled *)
  mutable ei_busy : bool;  (* a propose/collect round is in flight *)
  mutable ei_fence : int;
      (* acceptor fence after an amnesia repair: refuse promises and
         accepts at or below it — the lost acceptor state may cover them *)
}

type t = {
  shared : shared;
  addr : Address.t;
  role : role;
  base_addr : Address.t;
  mutable db : Database.t;
  av : Av_table.t;
  view : Peer_view.t;
  sel_state : Strategy.selection_state;
  rng : Rng.t;
  mutable locks : Lock_manager.t;
  participant : Two_phase.Participant.t;
  participant_txns : (int, participant_txn) Hashtbl.t;
  coordinators : (int, coord) Hashtbl.t;
  mutable txn_log : Txn_log.t;
  metrics : Update.Metrics.t;
  (* The disk beneath each durable log: armed faults are applied to the
     synced image at crash time, and the next recovery reads back through
     the damage-classifying parser instead of trusting the in-memory log.
     Costs nothing while no fault is armed. *)
  wal_sink : Fault_sink.t;
  txn_sink : Fault_sink.t;
  (* Items whose local replica can no longer be trusted after storage
     damage: they refuse prepares, reject updates and hide from reads
     until repaired from a donor (or forever, when none exists). Trusted
     in-memory metadata, like [sync_out]: survives crashes, so an
     interrupted repair resumes at the next recovery. *)
  quarantined : (string, unit) Hashtbl.t;
  (* Epoch-class items this site subscribes to, keyed by item. Built once
     at creation from the catalogue ∩ interest set; the table's presence
     check is the third branch of the checking function. *)
  epochs : (string, epoch_item) Hashtbl.t;
  (* Set (stickily) once the protocol log loses synced records: from then
     on "no log entry" no longer implies "never happened", so presumed
     abort is off the table and lost txids answer [No_record]. *)
  mutable amnesia : bool;
  (* Cumulative net local delta and a strictly increasing change stamp per
     item; survives crashes (persisted metadata, like the AV table). The
     receiver-side counterpart below makes lazy propagation loss-,
     duplicate- and reorder-proof. One table, one lookup per update. *)
  sync_out : (string, item_sync) Hashtbl.t;
  mutable sync_seq : int;
      (* bumped on every local change; an item's [version] is the seq of
         its latest change, so versions are strictly monotone per item *)
  mutable sync_flushed_seq : int;
      (* everything <= this has been broadcast at least once *)
  conveyed_sync : (int, int) Hashtbl.t;
      (* peer -> seq whose delivery that peer has positively acknowledged
         (via an AV-grant reply to a request carrying the piggyback);
         flushes skip counters a peer is known to hold *)
  applied_sync : (int * string, int * int) Hashtbl.t;
      (* (origin site, item) -> last (version, counter) applied *)
  applied_high : (int, int) Hashtbl.t;
      (* origin -> highest version applied from it; gap-free because every
         payload carries an origin's whole unacknowledged backlog, so this
         single int is a complete cumulative acknowledgement *)
  mutable last_sync_apply : Avdb_sim.Time.t option;
      (* sim-time of the last remotely-originated sync batch this replica
         committed; feeds the [sync.apply_age_ms] staleness gauge *)
  mutable sync_rr : int;  (* rotation cursor for [Config.sync_fanout] *)
  mutable sync_rot_left : int;  (* fanout flushes still owed this rotation *)
  prefetch_in_flight : (string, unit) Hashtbl.t;
  (* [peers_for ~item] memo, stamped with the topology version so joins
     invalidate it without any broadcast. Only populated under partial
     replication: its size is bounded by the site's interest set. *)
  peer_cache : (string, int * Address.t list) Hashtbl.t;
  mutable history_seq : int;
  mutable sync_flush_scheduled : bool;
  mutable next_txn_seq : int;
  (* Incarnation epoch, bumped by both crash and recover: every closure the
     site hands to the engine or the RPC layer is fenced on the epoch it
     was created under, so a continuation scheduled before a crash can
     never mutate post-recovery state. *)
  mutable epoch : int;
  (* Client operations still awaiting their outcome. Fencing would leave
     them unanswered across a crash (their continuations die with the
     incarnation), so [crash] fails each one explicitly - the submitting
     client is colocated with the site and observes the failure. *)
  inflight : (int, Update.outcome -> unit) Hashtbl.t;
  mutable next_op_seq : int;
}

let stock_table = "stock"
let history_table = "history"

let addr t = t.addr
let role t = t.role
let base t = t.base_addr
let database t = t.db
let av_table t = t.av
let peer_view t = t.view
let metrics t = t.metrics
let txn_log t = t.txn_log

let is_quarantined t ~item = Hashtbl.mem t.quarantined item

let quarantined_items t =
  Hashtbl.fold (fun item () acc -> item :: acc) t.quarantined []
  |> List.sort String.compare

let is_amnesiac t = t.amnesia

let arm_disk_fault t ~target spec =
  match target with
  | `Wal -> Fault_sink.arm t.wal_sink spec
  | `Txn -> Fault_sink.arm t.txn_sink spec

let network t = Rpc.network t.shared.rpc
let engine t = t.shared.engine
let config t = t.shared.config
let now t = Engine.now (engine t)
let is_down t = Network.is_down (network t) t.addr
let site_index t = Address.to_int t.addr
let topology t = t.shared.topology

let peers t =
  List.filter_map
    (fun i -> if i = site_index t then None else Some (Address.of_int i))
    (List.init t.shared.n_members (fun i -> i))

(* --- per-item topology routing --- *)

let base_addr_for t ~item = Address.of_int (Topology.base_index (topology t) ~item)
let interested_in t ~item = Topology.interested (topology t) ~site:(site_index t) ~item

let peer_interested t peer ~item =
  Topology.interested (topology t) ~site:(Address.to_int peer) ~item

(* The item's subscribers minus this site: the AV-selection candidates,
   the Immediate Update cohort and the sync audience. Cached per item
   under partial replication (bounded by the interest set); computed
   directly under full replication, where caching every peer list would
   cost O(items × N) per site. *)
let peers_for t ~item =
  let topo = topology t in
  if Topology.is_full topo then peers t
  else begin
    let v = Topology.version topo in
    match Hashtbl.find_opt t.peer_cache item with
    | Some (v', l) when v' = v -> l
    | _ ->
        let l =
          List.filter_map
            (fun i -> if i = site_index t then None else Some (Address.of_int i))
            (Topology.subscribers topo ~item)
        in
        Hashtbl.replace t.peer_cache item (v, l);
        l
  end

(* Hierarchical AV circulation: the cold-cache fallback target is this
   site's parent in the item's subscriber tree, so requests climb toward
   the base instead of all N subscribers hammering it directly. *)
let av_fallback t ~item =
  Option.map Address.of_int (Topology.av_parent (topology t) ~site:(site_index t) ~item)

let trace t ?level ~category fmt =
  Trace.recordf t.shared.trace ~at:(now t) ?level ~category fmt

(* Causal spans, always attributed to this site at the current sim-time.
   Parents are either local enclosing spans or the server-side RPC span
   handed to request handlers (the caller's context across the wire). *)
let span_start t ?parent ~category name =
  Avdb_obs.Tracer.start t.shared.tracer ~at:(now t) ?parent
    ~site:(Address.to_int t.addr) ~category name

let span_field t sp key value = Avdb_obs.Tracer.set_field t.shared.tracer sp key value
let span_warn t sp = Avdb_obs.Tracer.warn t.shared.tracer sp
let span_end t sp = Avdb_obs.Tracer.finish t.shared.tracer ~at:(now t) sp

(* Hot paths test this before building span arguments (field strings,
   field lists), so a disabled tracer costs one load and branch. *)
let tracing t = Avdb_obs.Tracer.enabled t.shared.tracer

let span_field_int t sp key n =
  Avdb_obs.Tracer.set_field_int t.shared.tracer sp key n

let span_instant t ?parent ?status ?fields ~category name =
  ignore
    (Avdb_obs.Tracer.instant t.shared.tracer ~at:(now t) ?parent
       ~site:(Address.to_int t.addr) ?status ?fields ~category name)

(* Epoch fence: [fenced t k] is [k] while the site stays in its current
   incarnation and a no-op after any crash or recovery in between. *)
let fenced t k =
  let epoch = t.epoch in
  fun x -> if t.epoch = epoch then k x

let retry_policy t = (config t).Config.rpc_retry

let track_inflight t finish =
  let op = t.next_op_seq in
  t.next_op_seq <- t.next_op_seq + 1;
  Hashtbl.replace t.inflight op finish;
  fun outcome ->
    if Hashtbl.mem t.inflight op then begin
      Hashtbl.remove t.inflight op;
      finish outcome
    end

let amount_of t ~item =
  match Database.get_col t.db ~table:stock_table ~key:item ~col:"amount" with
  | Ok (Value.Int n) -> Some n
  | Ok _ | Error _ -> None

let item_known t ~item = Database.mem t.db ~table:stock_table ~key:item

(* Heap words reachable from the site's replica + protocol state: stock
   rows, AV ledger, peer view, sync sender/receiver tables and the peer
   cache. Deliberately excludes the WAL and audit history (they grow with
   applied-update count, not with the catalogue) — this is the quantity
   partial replication bounds by the interest set. *)
let live_words t =
  Obj.reachable_words
    (Obj.repr
       ( Database.table t.db stock_table,
         t.av,
         t.view,
         t.sync_out,
         t.conveyed_sync,
         t.applied_sync,
         t.applied_high,
         t.peer_cache ))

(* Transaction ids for Immediate Update must be globally unique; reserve a
   large per-site range keyed by the address. *)
let fresh_txid t =
  let txid = (Address.to_int t.addr * 1_000_000) + t.next_txn_seq in
  t.next_txn_seq <- t.next_txn_seq + 1;
  txid

let pending_sync_deltas t =
  Hashtbl.fold
    (fun item s acc -> if s.version > t.sync_flushed_seq then (item, s.cum) :: acc else acc)
    t.sync_out []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Consistency-lag probe inputs: how far this replica's view of [item]
   trails its origin, measured in sync-counter versions. The origin's
   outbound stamp minus what this site has applied from it is a monotone
   staleness distance — 0 exactly when every delta the origin ever
   queued has landed here. *)
let sync_version t ~item =
  match Hashtbl.find_opt t.sync_out item with Some s -> s.version | None -> 0

let applied_sync_version t ~origin ~item =
  match Hashtbl.find_opt t.applied_sync (origin, item) with
  | Some (version, _) -> version
  | None -> 0

let last_sync_apply t = t.last_sync_apply

let queue_sync t ~item ~delta =
  t.sync_seq <- t.sync_seq + 1;
  (* Exception-style lookup: this runs once per applied update and the
     steady state is always a hit, so skip [find_opt]'s [Some]. *)
  match Hashtbl.find t.sync_out item with
  | s ->
      s.version <- t.sync_seq;
      s.cum <- s.cum + delta
  | exception Not_found -> Hashtbl.add t.sync_out item { version = t.sync_seq; cum = delta }

(* Counters a peer is not yet known to hold: everything stamped after the
   last piggyback that peer acknowledged (or everything, when [force]d —
   recovery and quiescence flushes must not trust optimistic state).
   Under partial replication, counters for items the peer does not
   subscribe to are omitted — it has no row to apply them to and must
   never be made to track them. *)
(* The full pending-counter list, encoded (folded out of the hashtable
   and name-sorted) once. [flush_sync] shares one of these across all
   its peers — each peer's payload is a filter of it — instead of
   re-folding and re-sorting per notified peer. *)
let pending_counters t =
  Hashtbl.fold (fun item s acc -> (item, s.version, s.cum) :: acc) t.sync_out []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let filter_payload t ~force ~pending peer =
  let upto =
    if force then 0
    else Option.value ~default:0 (Hashtbl.find_opt t.conveyed_sync (Address.to_int peer))
  in
  if t.sync_seq <= upto then []
  else begin
    let full = Topology.is_full (topology t) in
    List.filter
      (fun (item, version, _) ->
        version > upto && (full || peer_interested t peer ~item))
      pending
  end

let sync_payload_for t ~force peer =
  filter_payload t ~force ~pending:(pending_counters t) peer

let note_sync_conveyed t peer ~upto =
  let p = Address.to_int peer in
  if upto > Option.value ~default:0 (Hashtbl.find_opt t.conveyed_sync p) then
    Hashtbl.replace t.conveyed_sync p upto

let sync_av_info t counters =
  List.filter_map
    (fun (item, _, _) ->
      if Av_table.is_defined t.av ~item then Some (item, Av_table.available t.av ~item)
      else None)
    counters

(* Receiver side, shared by dedicated notices and payloads piggybacked on
   AV traffic: apply only counters stamped newer than the last one seen
   from that origin. Versions are strictly monotone per (origin, item), so
   losses, replays and reorderings all resolve to "apply the cumulative
   difference once, in stamp order". *)
let apply_sync_counters t ~src counters =
  if counters <> [] && not (is_down t) then begin
    let origin = Address.to_int src in
    let fresh_deltas =
      List.filter_map
        (fun (item, version, cum) ->
          match Hashtbl.find_opt t.applied_sync (origin, item) with
          | Some (last_version, _) when version <= last_version -> None
          | Some (_, last_cum) -> Some (item, cum - last_cum, version, cum)
          | None -> Some (item, cum, version, cum))
        counters
    in
    if fresh_deltas <> [] && Mutation.enabled Mutation.Lossy_sync then
      (* Mutation: a lossy counter — advance the per-origin version
         bookkeeping as if the deltas were applied but drop the data.
         Later counters diff against the recorded cum, so the volume is
         permanently lost and replicas never converge. *)
      List.iter
        (fun (item, _, version, cum) ->
          Hashtbl.replace t.applied_sync (origin, item) (version, cum);
          if version > Option.value ~default:0 (Hashtbl.find_opt t.applied_high origin)
          then Hashtbl.replace t.applied_high origin version)
        fresh_deltas
    else if fresh_deltas <> [] then begin
      let txn = Database.begin_txn t.db in
      let ok =
        List.for_all
          (fun (item, delta, _, _) ->
            Result.is_ok
              (Database.add_int txn ~table:stock_table ~key:item ~col:"amount" delta))
          fresh_deltas
      in
      if ok then begin
        Database.commit txn;
        List.iter
          (fun (item, _, version, cum) ->
            Hashtbl.replace t.applied_sync (origin, item) (version, cum);
            if version > Option.value ~default:0 (Hashtbl.find_opt t.applied_high origin)
            then Hashtbl.replace t.applied_high origin version)
          fresh_deltas;
        t.last_sync_apply <- Some (now t);
        if tracing t then
          span_instant t ~category:"sync" "sync.apply"
            ~fields:
              [
                ("from", Address.to_string src);
                ("items", string_of_int (List.length fresh_deltas));
              ]
      end
      else Database.abort txn
    end
  end

(* History keys must sort lexicographically in insertion order (the audit
   table iterates rows in key order). Zero-padded six-digit decimals do
   that for the first million rows; past that, each extra digit is
   announced by a leading '~' — which sorts after every digit — so longer
   keys follow all shorter ones (plain "%06d" would interleave them).
   Hand-rolled over [Printf.sprintf]: this sits on the applied-update hot
   path and the format-string interpreter was measurable there. *)
let history_key n =
  if n < 0 then invalid_arg "Site.history_key: negative";
  let digits =
    let rec loop d v = if v < 10 then d else loop (d + 1) (v / 10) in
    loop 1 n
  in
  let prefix = if digits > 6 then digits - 6 else 0 in
  let width = if digits > 6 then digits else 6 in
  let b = Bytes.make (prefix + width) '0' in
  Bytes.fill b 0 prefix '~';
  let rec fill i v =
    Bytes.set b i (Char.unsafe_chr (Char.code '0' + (v mod 10)));
    if v >= 10 then fill (i - 1) (v / 10)
  in
  fill (prefix + width - 1) n;
  Bytes.unsafe_to_string b

(* Audit trail: one row per locally-applied update when configured. Runs in
   its own committed transaction right after the stock change - the WAL
   orders them, so recovery keeps history and stock consistent. *)
let record_history t ~item ~delta ~path =
  if (config t).Config.record_history then begin
    let txn = Database.begin_txn t.db in
    let key = history_key t.history_seq in
    t.history_seq <- t.history_seq + 1;
    let row = [| Value.Str item; Value.Int delta; Value.Str path |] in
    match Database.insert txn ~table:history_table ~key row with
    | Ok () -> Database.commit txn
    | Error e ->
        Database.abort txn;
        failwith ("Site.record_history: " ^ e)
  end

let flush_sync ?(force = false) t =
  (* Each notified peer gets every counter it has not acknowledged (not
     just recent deltas): a receiver that missed earlier notices catches
     up from any later one. Counters a peer acknowledged — through an
     AV-grant reply or a reverse-direction notice's ack vector — are
     omitted, and a fully caught-up peer is skipped entirely. With
     [Config.sync_fanout] set, only that many peers are notified per
     flush, rotating round-robin; the cumulative counters make the
     rotation safe because whichever flush finally reaches a peer carries
     everything it missed. [force] broadcasts everything to everyone:
     convergence must not depend on acks or rotation position. *)
  if (not (is_down t)) && Hashtbl.length t.sync_out > 0 then begin
    let new_deltas = t.sync_seq > t.sync_flushed_seq in
    t.sync_flushed_seq <- t.sync_seq;
    (* The audience: every peer under full replication; under partial
       replication only the union of the pending items' subscribers — a
       forced convergence flush included, so nothing here is O(N) per
       event unless the interest sets themselves are. *)
    let audience =
      if Topology.is_full (topology t) then peers t
      else begin
        let seen = Hashtbl.create 16 in
        Hashtbl.iter
          (fun item _ ->
            List.iter
              (fun i -> if i <> site_index t then Hashtbl.replace seen i ())
              (Topology.subscribers (topology t) ~item))
          t.sync_out;
        Hashtbl.fold (fun i () acc -> Address.of_int i :: acc) seen []
        |> List.sort Address.compare
      end
    in
    let targets =
      let all = audience in
      match (config t).Config.sync_fanout with
      | Some k when (not force) && k < List.length all ->
          let n = List.length all in
          (* A burst of deltas needs ceil(n/k) flushes for the rotation to
             reach every peer; [sync_rot_left] counts the ones still owed
             so the debounce re-arms until the cycle completes. *)
          if new_deltas then t.sync_rot_left <- ((n + k - 1) / k) - 1
          else if t.sync_rot_left > 0 then t.sync_rot_left <- t.sync_rot_left - 1;
          let start = t.sync_rr mod n in
          t.sync_rr <- t.sync_rr + k;
          List.filteri (fun i _ -> (i - start + n) mod n < k) all
      | Some _ | None ->
          t.sync_rot_left <- 0;
          all
    in
    let ack =
      Hashtbl.fold (fun origin version acc -> (origin, version) :: acc) t.applied_high []
      |> List.sort compare
    in
    let sent = ref false in
    (* One sync-encode pass per flush: fold and sort the pending counters
       once, then filter the shared list per peer. *)
    let pending = pending_counters t in
    List.iter
      (fun peer ->
        match filter_payload t ~force ~pending peer with
        | [] -> ()
        | counters ->
            sent := true;
            Rpc.notify t.shared.rpc ~src:t.addr ~dst:peer
              (Protocol.Sync_counters { counters; av_info = sync_av_info t counters; ack }))
      targets;
    if !sent then begin
      t.metrics.Update.Metrics.sync_batches_sent <-
        t.metrics.Update.Metrics.sync_batches_sent + 1;
      if tracing t then
        span_instant t ~category:"sync" "sync.flush"
          ~fields:[ ("items", string_of_int (Hashtbl.length t.sync_out)) ]
    end
  end

(* Apply a committed local delta to the replicated stock value and queue it
   for lazy propagation. Only called after AV accounting has authorised the
   delta, so a failure here is a bug, not an input error. *)
let rec apply_local_delta t ~item ~delta =
  match Database.apply_int t.db ~table:stock_table ~key:item ~col:"amount" delta with
  | Ok _new_amount ->
      record_history t ~item ~delta ~path:"delay";
      queue_sync t ~item ~delta;
      schedule_sync_flush t
  | Error e -> failwith (Printf.sprintf "Site.apply_local_delta %s: %s" item e)

(* Lazy propagation is debounced rather than a free-running timer: the
   first delta after a quiet period arms one flush event [sync_interval]
   later. A drained event queue therefore means true quiescence. *)
and schedule_sync_flush t =
  match (config t).Config.sync_interval with
  | None -> ()
  | Some interval ->
      if
        (not t.sync_flush_scheduled)
        && (t.sync_seq > t.sync_flushed_seq || t.sync_rot_left > 0)
      then begin
        t.sync_flush_scheduled <- true;
        ignore
          (Engine.schedule (engine t) ~delay:interval
             (fenced t (fun () ->
                  t.sync_flush_scheduled <- false;
                  flush_sync t;
                  (* Keep the timer alive while a fanout rotation still owes
                     peers their notice. *)
                  schedule_sync_flush t)))
      end

(* --- request handling (the accelerator's server side) --- *)

(* Piggybacks are free on an unmetered network but spend the link's
   bandwidth on a metered one, where inflating an RPC can push it past its
   own timeout. Budget: roughly a tenth of the bytes the link moves within
   one RPC timeout, expressed as an entry count (an entry is an item name
   plus an int or two). *)
let piggyback_entry_budget t =
  match (config t).Config.bandwidth_bytes_per_sec with
  | None -> max_int
  | Some b ->
      int_of_float (Time.to_sec (config t).Config.rpc_timeout *. float_of_int b)
      / (10 * 24)

let rec list_take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: list_take (n - 1) rest

(* The donor's available AV across items, piggybacked on grants so one
   reply warms the requester's whole selection cache. Zero levels are
   included: learning a peer ran dry is exactly what steers selection
   away from it. *)
let av_levels_snapshot t = list_take
    (piggyback_entry_budget t)
    (List.map (fun (item, available, _) -> (item, available)) (Av_table.snapshot t.av))

(* Sync counters to piggyback on an AV request or grant towards [peer],
   paired with the sequence number the payload covers (0 when nothing may
   be concluded from it). All-or-nothing: a truncated payload must not be
   sent, because the requester advances its conveyed-tracking on the
   reply assuming the whole backlog went through. *)
let sync_piggyback_for t peer =
  let payload = sync_payload_for t ~force:false peer in
  if List.length payload > piggyback_entry_budget t then ([], 0)
  else (payload, t.sync_seq)

let handle_av_request t ~src ~span ~item ~amount ~requester_available ~sync ~reply =
  Peer_view.observe t.view ~site:src ~item ~volume:requester_available ~at:(now t);
  apply_sync_counters t ~src sync;
  let available = Av_table.available t.av ~item in
  let granting = (config t).Config.strategy.Strategy.granting in
  let granted = Strategy.Granting.amount granting ~available ~requested:amount in
  let granted =
    if granted = 0 then 0
    else
      match Av_table.withdraw t.av ~item granted with
      | Ok () -> granted
      | Error _ -> 0
  in
  t.metrics.Update.Metrics.av_volume_granted <-
    t.metrics.Update.Metrics.av_volume_granted + granted;
  Log.debug (fun m ->
      m "%a grants %d AV of %s to %a" Address.pp t.addr granted item Address.pp src);
  trace t ~category:"av" "%a grants %d of %s to %a (keeps %d)" Address.pp t.addr granted item
    Address.pp src (Av_table.available t.av ~item);
  if tracing t then
    span_instant t ?parent:span ~category:"av" "av.grant"
      ~fields:
        [
          ("item", item);
          ("granted", string_of_int granted);
          ("to", Address.to_string src);
        ];
  reply
    (Protocol.Av_grant
       {
         granted;
         donor_available = Av_table.available t.av ~item;
         av_levels = av_levels_snapshot t;
         (* Unacknowledged piggyback: the requester's version checks make
            a replayed reply harmless, and its conveyed-tracking is never
            advanced by it. *)
         sync = fst (sync_piggyback_for t src);
       })

let handle_central_update t ~item ~delta ~reply =
  if not (Address.equal t.addr (base_addr_for t ~item)) then
    reply (Protocol.Bad_request "central update at non-base site")
  else
    match amount_of t ~item with
    | None ->
        reply
          (Protocol.Central_ack { status = Protocol.Central_unknown_item; new_amount = 0 })
    | Some current ->
        if current + delta < 0 then
          reply
            (Protocol.Central_ack
               { status = Protocol.Central_insufficient; new_amount = current })
        else begin
          let txn = Database.begin_txn t.db in
          match Database.add_int txn ~table:stock_table ~key:item ~col:"amount" delta with
          | Ok new_amount ->
              Database.commit txn;
              record_history t ~item ~delta ~path:"central";
              reply (Protocol.Central_ack { status = Protocol.Central_applied; new_amount })
          | Error _ ->
              Database.abort txn;
              reply
                (Protocol.Central_ack
                   { status = Protocol.Central_insufficient; new_amount = current })
        end

(* Finalise a prepared transaction at this participant (from a Decision
   message or the termination protocol). *)
let finalize_participant t ~txid decision =
  match Two_phase.Participant.on_decision t.participant ~txid decision with
  | Two_phase.Participant.Apply -> (
      match Hashtbl.find_opt t.participant_txns txid with
      | Some p ->
          Database.commit p.p_txn;
          record_history t ~item:p.p_item ~delta:p.p_delta ~path:"immediate";
          Hashtbl.remove t.participant_txns txid;
          Lock_manager.release_all t.locks ~owner:txid;
          span_field t p.p_span "decision" "commit";
          span_end t p.p_span;
          Txn_log.record_outcome t.txn_log ~txid decision ~at:(now t)
      | None -> ())
  | Two_phase.Participant.Revert -> (
      match Hashtbl.find_opt t.participant_txns txid with
      | Some p ->
          Database.abort p.p_txn;
          Hashtbl.remove t.participant_txns txid;
          Lock_manager.release_all t.locks ~owner:txid;
          span_field t p.p_span "decision" "abort";
          span_warn t p.p_span;
          span_end t p.p_span;
          Txn_log.record_outcome t.txn_log ~txid decision ~at:(now t)
      | None -> ())
  | Two_phase.Participant.Ignore -> ()

(* Full-cohort adjudication: the storage-fault extension of cooperative
   termination. When a coordinator answers [No_record] (its protocol log
   lost the txid), or when our own coordination's outcome record may be
   among what our log lost, presumed abort is unsound — the decision may
   have existed and been erased. One sweep asks every fellow at once:

   - any [Peer_decided] answer wins: it is a durable record of the one
     decision ever taken;
   - any [Peer_will_refuse] proves commit impossible — the pledge is
     only given by a non-amnesiac site that has never voted Ready, and
     commit needs every vote;
   - a complete sweep of unanimous [Peer_prepared] makes abort
     consistent with every surviving effect: a site that applied the
     commit either still holds its record (contradiction) or has since
     lost its log — and a log-losing site quarantines and repairs the
     item, erasing the effect. An amnesiac coordinator never decides
     spontaneously, so no commit record can appear after the sweep.

   Incomplete sweeps (timeouts) retry, budget-bounded so a dead cohort
   cannot keep the event queue alive; on exhaustion the doubt stands. *)
let max_adjudication_sweeps = 64

let adjudicate t ~txid ~fellows ~still_wanted ~decide =
  let decide d = if still_wanted () then decide d in
  if fellows = [] then decide Two_phase.Abort
  else begin
    let rec sweep n =
      if still_wanted () && not (is_down t) then begin
        if n >= max_adjudication_sweeps then
          trace t ~level:Trace.Warn ~category:"2pc"
            "tx%d adjudication gave up after %d sweeps at %a" txid n Address.pp t.addr
        else begin
          let outstanding = ref (List.length fellows) in
          let decided = ref None in
          let refused = ref false in
          let complete = ref true in
          let finish_one () =
            decr outstanding;
            if !outstanding = 0 then begin
              match !decided with
              | Some d -> decide d
              | None ->
                  if !refused || !complete then decide Two_phase.Abort
                  else
                    ignore
                      (Engine.schedule (engine t)
                         ~delay:(config t).Config.repair_interval
                         (fenced t (fun () -> sweep (n + 1))))
            end
          in
          List.iter
            (fun fellow ->
              t.metrics.Update.Metrics.termination_queries <-
                t.metrics.Update.Metrics.termination_queries + 1;
              Rpc.call t.shared.rpc ~src:t.addr ~dst:fellow
                ~timeout:(config t).Config.rpc_timeout
                (Protocol.Peer_decision_query { txid })
                (fenced t (fun response ->
                     (match response with
                     | Ok (Protocol.Peer_decision_status { status; _ }) -> (
                         match status with
                         | Protocol.Peer_decided d ->
                             if !decided = None then decided := Some d
                         | Protocol.Peer_will_refuse -> refused := true
                         | Protocol.Peer_prepared -> ())
                     | Ok _ | Error _ -> complete := false);
                     finish_one ())))
            fellows
        end
      end
    in
    sweep 0
  end

(* Termination protocol (cooperative, Bernstein et al. §7): a participant
   left prepared past the decision timeout round-robins over the
   coordinator, the base and its fellow cohort members.

   - The coordinator answers {!Protocol.Query_decision} from its durable
     log: [Decided] resolves the doubt, [Unknown_txn] means it never
     started the transaction (Start is logged before the prepare
     broadcast), so abort is safe (presumed abort).
   - A cohort member answers {!Protocol.Peer_decision_query}:
     [Peer_decided] resolves; [Peer_will_refuse] is a durable pledge
     never to vote Ready, and since commit requires every cohort vote the
     asker may abort; [Peer_prepared] means the peer is equally in doubt.

   No heuristic decision is ever taken: if nobody knows, the participant
   stays prepared (holding its lock) and retries. The retry budget is
   bounded so a permanently-dead coordinator cannot keep the event queue
   alive forever; resolution is then driven by the recovered
   coordinator's decision re-broadcast, or by this site's own next
   recovery restarting the checks with a fresh budget. *)
let max_decision_queries = 64

let termination_targets t ~coordinator ~cohort ~item =
  let fellows =
    List.filter
      (fun a -> not (Address.equal a t.addr || Address.equal a coordinator))
      cohort
  in
  (* the item's base first among the fellows: it is the one whose ack
     defines user-visible completion, so it is the most likely to know *)
  let base, rest = List.partition (Address.equal (base_addr_for t ~item)) fellows in
  coordinator :: (base @ rest)

let rec schedule_termination_check t ~txid =
  ignore
    (Engine.schedule (engine t) ~delay:(config t).Config.decision_timeout
       (fenced t (fun () ->
            match Hashtbl.find_opt t.participant_txns txid with
            | None -> () (* decision arrived meanwhile *)
            | Some p ->
                if is_down t then schedule_termination_check t ~txid
                else if Mutation.enabled Mutation.Unilateral_abort then begin
                  (* Mutation: the removed [abort_pending] path — give up on
                     the in-doubt transaction without asking anyone. If the
                     coordinator decided Commit, this site diverges. *)
                  trace t ~level:Trace.Warn ~category:"2pc"
                    "tx%d unilaterally aborted at %a (mutation)" txid Address.pp t.addr;
                  finalize_participant t ~txid Two_phase.Abort
                end
                else if p.p_queries >= max_decision_queries then
                  trace t ~level:Trace.Warn ~category:"2pc"
                    "tx%d still in doubt at %a after %d queries; blocked until the \
                     coordinator resurfaces"
                    txid Address.pp t.addr p.p_queries
                else begin
                  let targets =
                    termination_targets t ~coordinator:p.p_coordinator ~cohort:p.p_cohort
                      ~item:p.p_item
                  in
                  let target = List.nth targets (p.p_queries mod List.length targets) in
                  p.p_queries <- p.p_queries + 1;
                  t.metrics.Update.Metrics.termination_queries <-
                    t.metrics.Update.Metrics.termination_queries + 1;
                  if tracing t then
                    span_instant t ~category:"2pc" "2pc.termination_query"
                      ~fields:
                        [
                          ("txid", string_of_int txid);
                          ("target", Address.to_string target);
                        ];
                  if Address.equal target p.p_coordinator then
                    Rpc.call t.shared.rpc ~src:t.addr ~dst:target
                      ~timeout:(config t).Config.rpc_timeout ~retry:(retry_policy t)
                      (Protocol.Query_decision { txid })
                      (fenced t (fun response ->
                           match response with
                           | Ok (Protocol.Decision_status { status; _ }) -> (
                               match status with
                               | Protocol.Decided decision ->
                                   trace t ~category:"2pc"
                                     "tx%d outcome recovered via termination protocol at %a"
                                     txid Address.pp t.addr;
                                   finalize_participant t ~txid decision
                               | Protocol.Still_pending -> schedule_termination_check t ~txid
                               | Protocol.Unknown_txn ->
                                   trace t ~category:"2pc" "tx%d presumed aborted at %a" txid
                                     Address.pp t.addr;
                                   finalize_participant t ~txid Two_phase.Abort
                               | Protocol.No_record ->
                                   (* the coordinator's log lost the txid:
                                      presumed abort is unsound there, so
                                      adjudicate with the full cohort *)
                                   trace t ~level:Trace.Warn ~category:"2pc"
                                     "tx%d coordinator lost its record; adjudicating at %a"
                                     txid Address.pp t.addr;
                                   let fellows =
                                     List.filter
                                       (fun a ->
                                         not
                                           (Address.equal a t.addr
                                           || Address.equal a p.p_coordinator))
                                       p.p_cohort
                                   in
                                   adjudicate t ~txid ~fellows
                                     ~still_wanted:(fun () ->
                                       Hashtbl.mem t.participant_txns txid)
                                     ~decide:(fun d -> finalize_participant t ~txid d))
                           | Ok _ | Error _ -> schedule_termination_check t ~txid))
                  else
                    Rpc.call t.shared.rpc ~src:t.addr ~dst:target
                      ~timeout:(config t).Config.rpc_timeout ~retry:(retry_policy t)
                      (Protocol.Peer_decision_query { txid })
                      (fenced t (fun response ->
                           match response with
                           | Ok (Protocol.Peer_decision_status { status; _ }) -> (
                               match status with
                               | Protocol.Peer_decided decision ->
                                   trace t ~category:"2pc"
                                     "tx%d outcome learned from cohort member %a at %a" txid
                                     Address.pp target Address.pp t.addr;
                                   finalize_participant t ~txid decision
                               | Protocol.Peer_will_refuse ->
                                   trace t ~category:"2pc"
                                     "tx%d aborted at %a (%a pledged to refuse)" txid
                                     Address.pp t.addr Address.pp target;
                                   finalize_participant t ~txid Two_phase.Abort
                               | Protocol.Peer_prepared ->
                                   schedule_termination_check t ~txid)
                           | Ok _ | Error _ -> schedule_termination_check t ~txid))
                end)))

let handle_prepare t ~span ~txid ~coordinator ~cohort ~item ~delta ~reply =
  (* Participant span: open from the prepare through lock wait and
     tentative apply, closed by the decision (it outlives the RPC span,
     which only covers prepare-to-vote). *)
  let psp = span_start t ?parent:span ~category:"2pc" "2pc.participant" in
  span_field_int t psp "txid" txid;
  span_field t psp "item" item;
  let refuse () =
    span_field t psp "vote" "refuse";
    span_warn t psp;
    span_end t psp
  in
  (* A refusal pledge (cooperative termination) or an already-finalised
     outcome poisons the txid: a late or duplicated prepare must never
     re-open it. *)
  let poisoned () =
    Txn_log.is_refused t.txn_log ~txid
    ||
    match Txn_log.find t.txn_log ~txid with
    | Some { Txn_log.outcome = Some _; _ } -> true
    | Some _ | None -> false
  in
  (* A quarantined replica must not vote Ready: its row is untrusted and
     under repair. Refusing also freezes new commits on the item
     cluster-wide until the repair snapshot is complete. *)
  if poisoned () || Hashtbl.mem t.quarantined item || not (item_known t ~item) then begin
    ignore (Two_phase.Participant.on_prepare t.participant ~txid ~can_apply:false);
    refuse ();
    reply (Protocol.Vote { txid; vote = Two_phase.Refuse })
  end
  else
    Lock_manager.acquire t.locks ~owner:txid ~key:item Lock_manager.Exclusive
      ~timeout:(config t).Config.lock_timeout
      (fenced t (fun lock_result ->
        let can_apply =
          match lock_result with
          | Error `Timeout -> false
          | Ok () -> (
              (* re-check the poison: a refusal pledge given to a cohort
                 member while we waited for the lock binds this vote *)
              (not (poisoned ()))
              &&
              match amount_of t ~item with
              | Some current -> current + delta >= 0
              | None -> false)
        in
        let can_apply =
          can_apply
          &&
          let txn = Database.begin_txn t.db in
          match Database.add_int txn ~table:stock_table ~key:item ~col:"amount" delta with
          | Ok _ ->
              Hashtbl.replace t.participant_txns txid
                { p_txn = txn; p_coordinator = coordinator; p_cohort = cohort;
                  p_item = item; p_delta = delta; p_span = psp; p_queries = 0 };
              true
          | Error _ ->
              Database.abort txn;
              false
        in
        let vote = Two_phase.Participant.on_prepare t.participant ~txid ~can_apply in
        if vote = Two_phase.Refuse then begin
          Lock_manager.release_all t.locks ~owner:txid;
          refuse ()
        end
        else begin
          span_field t psp "vote" "ready";
          (* The prepared record: logged in the same atomic event as the
             Ready vote, so a crash can never leave us Ready-but-unlogged. *)
          if Txn_log.find t.txn_log ~txid = None then
            Txn_log.record_start t.txn_log ~txid ~coordinator ~cohort ~item ~delta
              ~at:(now t);
          schedule_termination_check t ~txid
        end;
        reply (Protocol.Vote { txid; vote })))

let handle_decision t ~txid ~decision ~reply =
  finalize_participant t ~txid decision;
  reply (Protocol.Decision_ack { txid })

let handle_query_decision t ~txid ~reply =
  let status =
    match Hashtbl.find_opt t.coordinators txid with
    | Some coord -> (
        match Two_phase.Coordinator.decision coord.machine with
        | Some d -> Protocol.Decided d
        | None -> Protocol.Still_pending)
    | None -> (
        match Txn_log.find t.txn_log ~txid with
        | Some { Txn_log.outcome = Some d; _ } -> Protocol.Decided d
        | Some { Txn_log.outcome = None; coordinator; _ }
          when Address.equal coordinator t.addr ->
            if t.amnesia then
              (* the outcome record may have been lost with the log
                 damage rather than never written: recovery is
                 adjudicating this entry with the cohort; hold askers
                 off until it resolves *)
              Protocol.Still_pending
            else begin
              (* We coordinated this txn but hold neither an in-memory
                 machine (reset on recovery) nor a logged outcome: we
                 crashed before deciding. Outcomes are logged before any
                 Commit is broadcast, so abort is the only possible verdict
                 (presumed abort); log it so repeated queries agree. *)
              Txn_log.record_outcome t.txn_log ~txid Two_phase.Abort ~at:(now t);
              Protocol.Decided Two_phase.Abort
            end
        | Some { Txn_log.outcome = None; _ } ->
            (* we know the txn but not its outcome: only possible while it
               is still being coordinated elsewhere *)
            Protocol.Still_pending
        | None -> if t.amnesia then Protocol.No_record else Protocol.Unknown_txn)
  in
  reply (Protocol.Decision_status { txid; status })

(* Cooperative termination, server side: tell a fellow in-doubt cohort
   member what we know. Answering a query for a transaction we have never
   heard of logs a durable refusal pledge first — from then on any late
   prepare for that txid is refused, which is what makes the asker's
   abort sound. *)
let handle_peer_decision_query t ~txid ~reply =
  let status =
    match Hashtbl.find_opt t.coordinators txid with
    | Some coord -> (
        match Two_phase.Coordinator.decision coord.machine with
        | Some d -> Protocol.Peer_decided d
        | None -> Protocol.Peer_prepared)
    | None -> (
        match Txn_log.find t.txn_log ~txid with
        | Some { Txn_log.outcome = Some d; _ } -> Protocol.Peer_decided d
        | Some { Txn_log.outcome = None; coordinator; _ }
          when Address.equal coordinator t.addr ->
            if t.amnesia then
              (* under adjudication by our own recovery; equally in doubt *)
              Protocol.Peer_prepared
            else begin
              (* our own coordination, crashed before deciding: presumed
                 abort, logged so every answer agrees from now on *)
              Txn_log.record_outcome t.txn_log ~txid Two_phase.Abort ~at:(now t);
              Protocol.Peer_decided Two_phase.Abort
            end
        | Some { Txn_log.outcome = None; _ } -> Protocol.Peer_prepared
        | None ->
            if t.amnesia then
              (* the pledge would be a lie: we may have voted Ready and
                 lost the record. Answer "equally in doubt" — never a
                 promise — and let the asker find a surviving record or
                 adjudicate elsewhere. *)
              Protocol.Peer_prepared
            else begin
              Txn_log.record_refused t.txn_log ~txid ~at:(now t);
              if tracing t then
                span_instant t ~category:"2pc" "2pc.refuse_pledge"
                  ~fields:[ ("txid", string_of_int txid) ];
              Protocol.Peer_will_refuse
            end)
  in
  reply (Protocol.Peer_decision_status { txid; status })

let handle_sync t ~src ~counters ~av_info ~ack =
  if not (is_down t) then begin
    List.iter
      (fun (item, volume) -> Peer_view.observe t.view ~site:src ~item ~volume ~at:(now t))
      av_info;
    (* The sender's cumulative ack of OUR counters: it holds everything of
       ours up to that version, so our later flushes to it shrink to the
       true backlog. *)
    (match List.assoc_opt (Address.to_int t.addr) ack with
    | Some upto -> note_sync_conveyed t src ~upto
    | None -> ());
    apply_sync_counters t ~src counters
  end

(* --- autonomous AV circulation (extension of the paper's Â§3.4) ---

   When a Delay Update leaves an item's available AV below the configured
   low watermark, refill in the background from one peer, aiming at twice
   the watermark. One in-flight refill per item; failures are silent (the
   foreground path still works on demand). *)

let rec maybe_prefetch t ~item =
  match (config t).Config.prefetch_low with
  | None -> ()
  | Some low ->
      if
        (not (is_down t))
        && (not (Hashtbl.mem t.prefetch_in_flight item))
        && Av_table.is_defined t.av ~item
        && Av_table.available t.av ~item < low
      then begin
        let strategy = (config t).Config.strategy in
        let exclude = Address.Set.singleton t.addr in
        match
          Strategy.select strategy ~rng:t.rng ~state:t.sel_state ~self:t.addr
            ~peers:(peers_for t ~item) ~fallback:(av_fallback t ~item) ~view:t.view ~item
            ~exclude
        with
        | None -> ()
        | Some target ->
            Hashtbl.replace t.prefetch_in_flight item ();
            t.metrics.Update.Metrics.prefetch_requests <-
              t.metrics.Update.Metrics.prefetch_requests + 1;
            let want = (2 * low) - Av_table.available t.av ~item in
            let sp = span_start t ~category:"av" "av.prefetch" in
            span_field t sp "item" item;
            span_field_int t sp "want" want;
            let sync, sync_upto = sync_piggyback_for t target in
            let request =
              Protocol.Av_request
                {
                  item;
                  amount = want;
                  requester_available = Av_table.available t.av ~item;
                  sync;
                }
            in
            Rpc.call t.shared.rpc ~src:t.addr ~dst:target
              ~timeout:(config t).Config.rpc_timeout ~retry:(retry_policy t) ~span:sp request
              (fenced t (fun response ->
                Hashtbl.remove t.prefetch_in_flight item;
                match response with
                | Ok (Protocol.Av_grant { granted; donor_available; av_levels; sync }) ->
                    note_sync_conveyed t target ~upto:sync_upto;
                    apply_sync_counters t ~src:target sync;
                    List.iter
                      (fun (item, volume) ->
                        Peer_view.observe t.view ~site:target ~item ~volume ~at:(now t))
                      av_levels;
                    Peer_view.observe t.view ~site:target ~item ~volume:donor_available
                      ~at:(now t);
                    span_field_int t sp "granted" granted;
                    span_end t sp;
                    if granted > 0 then begin
                      t.metrics.Update.Metrics.av_volume_received <-
                        t.metrics.Update.Metrics.av_volume_received + granted;
                      match Av_table.deposit t.av ~item granted with
                      | Ok () -> maybe_prefetch t ~item
                      | Error e -> failwith ("Site.maybe_prefetch deposit: " ^ e)
                    end
                | Ok _ | Error _ ->
                    span_warn t sp;
                    span_end t sp))
      end

(* --- Delay Update (client side) --- *)

(* Acquire [need] units of AV on [item], leaving exactly [need] held on
   success. On shortage, holds everything local and circulates AV from
   peers (the selecting + deciding functions), one correspondence per peer
   asked; surplus from a final over-grant stays available locally
   ("remaining AV is stored at the local AV table"). On failure every
   volume gathered is released back to available - nothing is lost, and
   what peers sent stays at this site for future updates. *)
let acquire_av t ?parent ~item ~need k =
  let av_ok tag = function
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "Site.acquire_av %s: %s" tag e)
  in
  if need < 0 then invalid_arg "Site.acquire_av: negative need";
  if need = 0 then k (Ok 0)
  else if Av_table.available t.av ~item >= need then begin
    av_ok "hold" (Av_table.hold t.av ~item need);
    k (Ok 0)
  end
  else begin
    (* Only the shortage path gets a span: a locally-satisfied hold is not
       an acquisition, and the quiet case would swamp the trace. *)
    t.metrics.Update.Metrics.av_shortages <- t.metrics.Update.Metrics.av_shortages + 1;
    let sp = span_start t ?parent ~category:"av" "av.acquire" in
    span_field t sp "item" item;
    span_field_int t sp "need" need;
    let acquired = ref (Av_table.hold_all t.av ~item) in
    let tried = ref (Address.Set.singleton t.addr) in
    let rounds = ref 0 in
    let give_up reason =
      av_ok "release" (Av_table.release t.av ~item !acquired);
      trace t ~level:Trace.Warn ~category:"av" "%a gives up acquiring %d of %s (%a)" Address.pp
        t.addr need item Update.pp_reason reason;
      if tracing t then
        span_field t sp "reason" (Format.asprintf "%a" Update.pp_reason reason);
      span_warn t sp;
      span_end t sp;
      k (Error reason)
    in
    let rec step () =
      if is_down t then give_up Update.Unreachable
      else if !acquired >= need then begin
        av_ok "release surplus" (Av_table.release t.av ~item (!acquired - need));
        trace t ~category:"av" "%a acquired %d of %s in %d rounds" Address.pp t.addr need item
          !rounds;
        span_field_int t sp "rounds" !rounds;
        span_end t sp;
        k (Ok !rounds)
      end
      else begin
        let strategy = (config t).Config.strategy in
        match
          Strategy.select strategy ~rng:t.rng ~state:t.sel_state ~self:t.addr
            ~peers:(peers_for t ~item) ~fallback:(av_fallback t ~item) ~view:t.view ~item
            ~exclude:!tried
        with
        | None -> give_up Update.Av_exhausted
        | Some target ->
            tried := Address.Set.add target !tried;
            incr rounds;
            t.metrics.Update.Metrics.av_requests_sent <-
              t.metrics.Update.Metrics.av_requests_sent + 1;
            let sync, sync_upto = sync_piggyback_for t target in
            let asked_at = now t in
            let request =
              Protocol.Av_request
                {
                  item;
                  amount = need - !acquired;
                  requester_available = Av_table.available t.av ~item;
                  sync;
                }
            in
            Rpc.call t.shared.rpc ~src:t.addr ~dst:target
              ~timeout:(config t).Config.rpc_timeout ~retry:(retry_policy t) ~span:sp request
              (fenced t (fun response ->
                (match response with
                | Ok (Protocol.Av_grant { granted; donor_available; av_levels; sync }) ->
                    Avdb_metrics.Sketch.add t.metrics.Update.Metrics.grant_latency
                      (Avdb_sim.Time.to_ms (Avdb_sim.Time.diff (now t) asked_at));
                    (* The reply acknowledges the request's piggyback:
                       counters up to [sync_upto] reached this peer, so
                       later flushes can omit them. *)
                    note_sync_conveyed t target ~upto:sync_upto;
                    apply_sync_counters t ~src:target sync;
                    List.iter
                      (fun (item, volume) ->
                        Peer_view.observe t.view ~site:target ~item ~volume ~at:(now t))
                      av_levels;
                    Peer_view.observe t.view ~site:target ~item ~volume:donor_available
                      ~at:(now t);
                    if granted > 0 then begin
                      t.metrics.Update.Metrics.av_volume_received <-
                        t.metrics.Update.Metrics.av_volume_received + granted;
                      av_ok "deposit grant" (Av_table.deposit t.av ~item granted);
                      (* Mutation: credit the grant twice — volume conjured
                         out of thin air; exact conservation must convict. *)
                      if Mutation.enabled Mutation.Double_deposit then
                        av_ok "double deposit" (Av_table.deposit t.av ~item granted);
                      av_ok "hold grant" (Av_table.hold t.av ~item granted);
                      acquired := !acquired + granted
                    end
                | Ok _ | Error _ -> ());
                step ()))
      end
    in
    step ()
  end

let delay_update t ~item ~delta ~finish =
  let root = span_start t ~category:"update" "update.delay" in
  (* Fields go on the span only if it is headed for an export: attaching
     them to a sampled-out (pending) span is pure throughput loss on THE
     hot path. A warn or slow finish can still promote the span below, in
     which case the fields are re-attached while the data is in scope. *)
  let recorded = Avdb_obs.Tracer.recording t.shared.tracer root in
  if recorded then begin
    span_field t root "item" item;
    span_field_int t root "delta" delta
  end;
  let finish outcome =
    (match outcome with
    | Update.Rejected _ -> span_warn t root
    | Update.Applied _ -> ());
    span_end t root;
    if (not recorded) && Avdb_obs.Tracer.recording t.shared.tracer root then begin
      span_field t root "item" item;
      span_field_int t root "delta" delta
    end;
    finish outcome
  in
  if delta >= 0 then begin
    (* Positive deltas create AV; no communication at all. [mint] rather
       than [deposit]: new volume enters the conservation ledger here,
       whereas grants from peers merely move existing volume. *)
    (match Av_table.mint t.av ~item delta with
    | Ok () -> ()
    | Error e -> failwith ("Site.delay_update mint: " ^ e));
    apply_local_delta t ~item ~delta;
    finish (Update.Applied Update.Local)
  end
  else begin
    let need = -delta in
    acquire_av t ~parent:root ~item ~need (function
      | Error reason -> finish (Update.Rejected reason)
      | Ok rounds ->
          apply_local_delta t ~item ~delta;
          (match Av_table.consume t.av ~item need with
          | Ok () -> ()
          | Error e -> failwith ("Site.delay_update consume: " ^ e));
          maybe_prefetch t ~item;
          finish
            (Update.Applied
               (if rounds = 0 then Update.Local else Update.With_transfer rounds)))
  end

(* Atomic multi-item Delay Update: acquire AV for every negative delta
   first (sequentially), then apply all deltas in one local storage
   transaction. If any acquisition fails, holds taken for earlier items
   are released and nothing is applied. *)
let batch_update t ~deltas ~finish =
  let root = span_start t ~category:"update" "update.delay_batch" in
  span_field_int t root "items" (List.length deltas);
  let finish outcome =
    (match outcome with
    | Update.Rejected _ -> span_warn t root
    | Update.Applied _ -> ());
    span_end t root;
    finish outcome
  in
  let coalesced =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (item, delta) ->
        Hashtbl.replace tbl item (delta + Option.value ~default:0 (Hashtbl.find_opt tbl item)))
      deltas;
    Hashtbl.fold (fun item delta acc -> (item, delta) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let release_held held =
    List.iter
      (fun (item, need) ->
        match Av_table.release t.av ~item need with
        | Ok () -> ()
        | Error e -> failwith ("Site.batch_update release: " ^ e))
      held
  in
  let apply_all () =
    let txn = Database.begin_txn t.db in
    List.iter
      (fun (item, delta) ->
        match Database.add_int txn ~table:stock_table ~key:item ~col:"amount" delta with
        | Ok _ -> ()
        | Error e -> failwith ("Site.batch_update apply: " ^ e))
      coalesced;
    Database.commit txn;
    List.iter
      (fun (item, delta) ->
        record_history t ~item ~delta ~path:"delay-batch";
        queue_sync t ~item ~delta;
        if delta >= 0 then begin
          match Av_table.mint t.av ~item delta with
          | Ok () -> ()
          | Error e -> failwith ("Site.batch_update mint: " ^ e)
        end
        else begin
          match Av_table.consume t.av ~item (-delta) with
          | Ok () -> ()
          | Error e -> failwith ("Site.batch_update consume: " ^ e)
        end)
      coalesced;
    schedule_sync_flush t;
    List.iter (fun (item, _) -> maybe_prefetch t ~item) coalesced
  in
  let rec acquire_loop pending held total_rounds =
    match pending with
    | [] ->
        apply_all ();
        finish
          (Update.Applied
             (if total_rounds = 0 then Update.Local else Update.With_transfer total_rounds))
    | (item, delta) :: rest ->
        if delta >= 0 then acquire_loop rest held total_rounds
        else begin
          let need = -delta in
          acquire_av t ~parent:root ~item ~need (function
            | Ok rounds -> acquire_loop rest ((item, need) :: held) (total_rounds + rounds)
            | Error reason ->
                release_held held;
                finish (Update.Rejected reason))
        end
  in
  acquire_loop coalesced [] 0

(* --- Immediate Update (coordinator side) --- *)

let immediate_update t ~item ~delta ~finish =
  let txid = fresh_txid t in
  let root = span_start t ~category:"update" "update.immediate" in
  span_field t root "item" item;
  span_field_int t root "delta" delta;
  span_field_int t root "txid" txid;
  let finish outcome =
    (match outcome with
    | Update.Rejected _ -> span_warn t root
    | Update.Applied _ -> ());
    span_end t root;
    finish outcome
  in
  (* Cohort = the item's replica set (everyone under full replication);
     user-visible completion keys on the item's base, not a global one. *)
  let participant_addrs = peers_for t ~item in
  let machine =
    Two_phase.Coordinator.create ~txid ~participants:participant_addrs
      ~base:(base_addr_for t ~item)
  in
  Txn_log.record_start t.txn_log ~txid ~coordinator:t.addr ~cohort:participant_addrs ~item
    ~delta ~at:(now t);
  let coord = { machine; finish; local_txn = None; local_finalized = false } in
  Hashtbl.add t.coordinators txid coord;
  (* Phase spans: prepare runs from Broadcast_prepare until a decision is
     reached; the decision round from the broadcast until Completed. *)
  let prepare_span = ref None and decision_span = ref None in
  let close_phase r =
    match !r with
    | Some sp ->
        r := None;
        span_end t sp
    | None -> ()
  in
  let rec execute actions = List.iter execute_one actions
  and execute_one action =
    match action with
    | Two_phase.Coordinator.Broadcast_prepare ->
        let psp = span_start t ~parent:root ~category:"2pc" "2pc.prepare" in
        prepare_span := Some psp;
        (* Prepare and Decision deliberately run without the retry policy:
           a lost prepare is a Refuse vote, a lost decision is recovered by
           the participant's termination protocol. *)
        List.iter
          (fun p ->
            Rpc.call t.shared.rpc ~src:t.addr ~dst:p
              ~timeout:(config t).Config.prepare_timeout ~span:psp
              (Protocol.Prepare
                 { txid; coordinator = t.addr; cohort = participant_addrs; item; delta })
              (fenced t (fun response ->
                   match response with
                   | Ok (Protocol.Vote { txid = _; vote }) ->
                       execute (Two_phase.Coordinator.on_vote machine ~from:p vote)
                   | Ok _ | Error _ ->
                       execute (Two_phase.Coordinator.on_vote machine ~from:p Two_phase.Refuse))))
          participant_addrs;
        ignore
          (Engine.schedule (engine t) ~delay:(config t).Config.prepare_timeout
             (fenced t (fun () -> execute (Two_phase.Coordinator.on_vote_timeout machine))))
    | Two_phase.Coordinator.Broadcast_decision decision ->
        close_phase prepare_span;
        let dsp = span_start t ~parent:root ~category:"2pc" "2pc.decision" in
        span_field t dsp "decision"
          (match decision with Two_phase.Commit -> "commit" | Two_phase.Abort -> "abort");
        decision_span := Some dsp;
        (* Log the outcome before telling anyone (presumed abort depends on
           "no record => never decided"), then finalise the local part. *)
        Txn_log.record_outcome t.txn_log ~txid decision ~at:(now t);
        if not coord.local_finalized then begin
          coord.local_finalized <- true;
          (match coord.local_txn with
          | Some txn -> (
              match decision with
              | Two_phase.Commit ->
                  Database.commit txn;
                  record_history t ~item ~delta ~path:"immediate"
              | Two_phase.Abort -> Database.abort txn)
          | None -> ());
          Lock_manager.release_all t.locks ~owner:txid
        end;
        List.iter
          (fun p ->
            Rpc.call t.shared.rpc ~src:t.addr ~dst:p ~timeout:(config t).Config.ack_timeout
              ~span:dsp
              (Protocol.Decision { txid; decision })
              (fenced t (fun response ->
                   match response with
                   | Ok (Protocol.Decision_ack _) ->
                       execute (Two_phase.Coordinator.on_ack machine ~from:p)
                   | Ok _ | Error _ -> ())))
          participant_addrs;
        ignore
          (Engine.schedule (engine t) ~delay:(config t).Config.ack_timeout
             (fenced t (fun () -> execute (Two_phase.Coordinator.on_ack_timeout machine))))
    | Two_phase.Coordinator.Completed decision ->
        close_phase prepare_span;
        close_phase decision_span;
        trace t ~category:"2pc" "tx%d %a at coordinator %a" txid Two_phase.pp_decision decision
          Address.pp t.addr;
        Txn_log.record_outcome t.txn_log ~txid decision ~at:(now t);
        let outcome =
          match decision with
          | Two_phase.Commit -> Update.Applied Update.Immediate
          | Two_phase.Abort -> Update.Rejected Update.Txn_aborted
        in
        coord.finish outcome
    | Two_phase.Coordinator.Cleanup _ ->
        (* The coordination is closed (all acks, or we gave up waiting):
           mark it ended so recovery does not re-broadcast. Stragglers
           that missed the decision resolve through the pull-side
           termination protocol, served from the log. *)
        Txn_log.record_end t.txn_log ~txid ~at:(now t);
        Hashtbl.remove t.coordinators txid
  in
  (* Local participation: lock, tentatively apply, derive the local vote. *)
  Lock_manager.acquire t.locks ~owner:txid ~key:item Lock_manager.Exclusive
    ~timeout:(config t).Config.lock_timeout
    (fenced t (fun lock_result ->
      let local_vote =
        match lock_result with
        | Error `Timeout -> Two_phase.Refuse
        | Ok () -> (
            match amount_of t ~item with
            | Some current when current + delta >= 0 -> (
                let txn = Database.begin_txn t.db in
                match Database.add_int txn ~table:stock_table ~key:item ~col:"amount" delta with
                | Ok _ ->
                    coord.local_txn <- Some txn;
                    Two_phase.Ready
                | Error _ ->
                    Database.abort txn;
                    Two_phase.Refuse)
            | Some _ | None -> Two_phase.Refuse)
      in
      if local_vote = Two_phase.Refuse then Lock_manager.release_all t.locks ~owner:txid;
      execute (Two_phase.Coordinator.start machine ~local_vote)))

(* --- Centralized baseline (client side) --- *)

let centralized_update t ~item ~delta ~finish =
  let root = span_start t ~category:"update" "update.central" in
  span_field t root "item" item;
  span_field_int t root "delta" delta;
  let finish outcome =
    (match outcome with
    | Update.Rejected _ -> span_warn t root
    | Update.Applied _ -> ());
    span_end t root;
    finish outcome
  in
  let base_addr = base_addr_for t ~item in
  if Address.equal t.addr base_addr then
    match amount_of t ~item with
    | None -> finish (Update.Rejected (Update.Unknown_item item))
    | Some current ->
        if current + delta < 0 then finish (Update.Rejected Update.Insufficient_stock)
        else begin
          let txn = Database.begin_txn t.db in
          (match Database.add_int txn ~table:stock_table ~key:item ~col:"amount" delta with
          | Ok _ ->
              Database.commit txn;
              record_history t ~item ~delta ~path:"central"
          | Error e ->
              Database.abort txn;
              failwith ("Site.centralized_update: " ^ e));
          finish (Update.Applied Update.Central)
        end
  else
    Rpc.call t.shared.rpc ~src:t.addr ~dst:base_addr
      ~timeout:(config t).Config.rpc_timeout ~retry:(retry_policy t) ~span:root
      (Protocol.Central_update { item; delta })
      (fenced t (fun response ->
           match response with
           | Ok (Protocol.Central_ack { status = Protocol.Central_applied; _ }) ->
               finish (Update.Applied Update.Central)
           | Ok (Protocol.Central_ack { status = Protocol.Central_insufficient; _ }) ->
               finish (Update.Rejected Update.Insufficient_stock)
           | Ok (Protocol.Central_ack { status = Protocol.Central_unknown_item; _ }) ->
               finish (Update.Rejected (Update.Unknown_item item))
           | Ok _ -> finish (Update.Rejected Update.Txn_aborted)
           | Error Rpc.Timeout -> finish (Update.Rejected Update.Unreachable)))

(* --- epoch-quorum commit: the third update class ---

   Writers log intents durably and hand them to a deterministic sequencer
   that rotates over the item's subscriber set; the sequencer totally
   orders the buffered intents into one seal per epoch and decides it with
   a single-decree quorum round (ballot = escalation rank, so candidates
   at different ranks never share a ballot). Subscribers apply sealed
   epochs strictly in order, pulling any gap, so every replica applies the
   same prefix — no per-transaction cross-site lock round-trip. *)

let epoch_state t ~item = Hashtbl.find_opt t.epochs item

(* Subscribers in topology order, self included; memoised against the
   topology version like [peer_cache]. *)
let epoch_subs t st =
  let topo = topology t in
  let v = Topology.version topo in
  if st.ei_subs_version <> v then begin
    st.ei_subs <- List.map Address.of_int (Topology.subscribers topo ~item:st.ei_item);
    st.ei_subs_version <- v
  end;
  st.ei_subs

let epoch_quorum subs = (List.length subs / 2) + 1

(* Epoch e's sequencer is subscriber (e mod n); escalation step c moves
   one rank further and doubles as the Paxos ballot. *)
let epoch_candidate t st ~epoch ~ballot =
  let subs = epoch_subs t st in
  List.nth subs ((epoch + ballot) mod List.length subs)

(* The durable promise for (item, epoch): promise and accept records both
   count, so the in-memory state needs no mirror. *)
let epoch_promised t st ~epoch = Txn_log.epoch_promise t.txn_log ~item:st.ei_item ~epoch

(* This site's candidate seal: every buffered intent not yet inside an
   applied seal, in a deterministic total order. *)
let buffered_seal st =
  Hashtbl.fold
    (fun _ (i : Txn_log.intent) acc ->
      if Hashtbl.mem st.ei_sealed i.Txn_log.i_txid then acc else i :: acc)
    st.ei_buffer []
  |> List.sort (fun (a : Txn_log.intent) (b : Txn_log.intent) ->
         match
           compare (Address.to_int a.Txn_log.i_origin) (Address.to_int b.Txn_log.i_origin)
         with
         | 0 -> compare a.Txn_log.i_txid b.Txn_log.i_txid
         | c -> c)

(* Apply one sealed epoch: the durable seal record and the stock apply
   happen in the same atomic event, then the local writers whose intents
   it contains are woken. [proposer] marks the site that sealed it — the
   hook point for both epoch mutations. *)
let apply_seal t st ~epoch ~seal ~proposer =
  let item = st.ei_item in
  Txn_log.record_epoch_seal t.txn_log ~item ~epoch ~seal ~at:(now t);
  let applied_intents =
    (* Mutation: a non-proposer subscriber silently drops the seal's first
       intent — the replicas diverge and the checker must notice. *)
    if (not proposer) && Mutation.enabled Mutation.Epoch_drop_intent then
      match seal with [] -> [] | _ :: rest -> rest
    else seal
  in
  let txn = Database.begin_txn t.db in
  List.iter
    (fun (i : Txn_log.intent) ->
      (* Mutation: the proposer applies its own seal twice over. *)
      let d =
        if proposer && Mutation.enabled Mutation.Epoch_double_seal then
          2 * i.Txn_log.i_delta
        else i.Txn_log.i_delta
      in
      match Database.add_int txn ~table:stock_table ~key:item ~col:"amount" d with
      | Ok _ -> ()
      | Error e ->
          Database.abort txn;
          failwith ("Site.apply_seal: " ^ e))
    applied_intents;
  Database.commit txn;
  List.iter
    (fun (i : Txn_log.intent) ->
      record_history t ~item ~delta:i.Txn_log.i_delta ~path:"epoch")
    applied_intents;
  st.ei_applied <- epoch;
  st.ei_attempts <- 0;
  Hashtbl.remove st.ei_stash epoch;
  if proposer then
    t.metrics.Update.Metrics.epochs_sealed <- t.metrics.Update.Metrics.epochs_sealed + 1;
  List.iter
    (fun (i : Txn_log.intent) ->
      Hashtbl.replace st.ei_sealed i.Txn_log.i_txid ();
      Hashtbl.remove st.ei_buffer i.Txn_log.i_txid;
      match Hashtbl.find_opt st.ei_waiters i.Txn_log.i_txid with
      | Some finish ->
          Hashtbl.remove st.ei_waiters i.Txn_log.i_txid;
          finish (Update.Applied Update.Epoch)
      | None -> ())
    seal;
  trace t ~category:"epoch" "%a applied %s e%d (%d intents%s)" Address.pp t.addr item
    epoch (List.length seal)
    (if proposer then ", sealed here" else "")

let rec drain_stash t st =
  match Hashtbl.find_opt st.ei_stash (st.ei_applied + 1) with
  | Some seal ->
      apply_seal t st ~epoch:(st.ei_applied + 1) ~seal ~proposer:false;
      drain_stash t st
  | None -> ()

(* Push the latest seal to every subscriber that has not acknowledged it;
   a receiver behind by more than one epoch pulls the gap itself. *)
let broadcast_commits t st =
  if st.ei_applied > 0 then begin
    let item = st.ei_item in
    match Txn_log.epoch_seal t.txn_log ~item ~epoch:st.ei_applied with
    | None -> ()  (* applied epoch below a snapshot floor: nothing to push *)
    | Some seal ->
        let epoch = st.ei_applied in
        List.iter
          (fun peer ->
            if not (Address.equal peer t.addr) then
              let acked =
                Option.value ~default:0
                  (Hashtbl.find_opt st.ei_acked (Address.to_int peer))
              in
              if acked < epoch then
                Rpc.call t.shared.rpc ~src:t.addr ~dst:peer
                  ~timeout:(config t).Config.rpc_timeout
                  (Protocol.Epoch_commit { item; epoch; seal })
                  (fenced t (function
                    | Ok (Protocol.Epoch_commit_ack { applied_epoch; _ }) ->
                        let p = Address.to_int peer in
                        if
                          applied_epoch
                          > Option.value ~default:0 (Hashtbl.find_opt st.ei_acked p)
                        then Hashtbl.replace st.ei_acked p applied_epoch
                    | Ok _ | Error _ -> ())))
          (epoch_subs t st)
  end

let apply_pulled_seals t st seals =
  List.iter
    (fun (epoch, seal) ->
      if epoch > st.ei_applied && not (Hashtbl.mem st.ei_stash epoch) then
        Hashtbl.replace st.ei_stash epoch seal)
    seals;
  drain_stash t st

(* The liveness pump: while this site holds unsealed intents (or stashed
   out-of-order seals), one tick per [epoch_interval] either proposes (if
   this site is the open epoch's current candidate), escalates to a
   takeover, or re-sends the intents to the candidate it believes in. *)
let rec ensure_pump t st =
  if
    (not st.ei_pump)
    && (Hashtbl.length st.ei_buffer > 0 || Hashtbl.length st.ei_stash > 0)
  then begin
    st.ei_pump <- true;
    ignore
      (Engine.schedule (engine t) ~delay:(config t).Config.epoch_interval
         (fenced t (fun () ->
              st.ei_pump <- false;
              pump_step t st;
              ensure_pump t st)))
  end

and pump_step t st =
  if (not (is_down t)) && (not (Hashtbl.mem t.quarantined st.ei_item)) && not st.ei_busy
  then begin
    if Hashtbl.length st.ei_stash > 0 then begin
      drain_stash t st;
      if Hashtbl.length st.ei_stash > 0 then request_pull t st
    end;
    if Hashtbl.length st.ei_buffer > 0 then begin
      st.ei_attempts <- st.ei_attempts + 1;
      let epoch = st.ei_applied + 1 in
      let ballot = (st.ei_attempts - 1) / 3 in
      let cand = epoch_candidate t st ~epoch ~ballot in
      if Address.equal cand t.addr then
        if ballot = 0 then
          let seal =
            (* ballot-0 value fixation: once this candidate durably
               accepted a value for the epoch it may never propose a
               different one at the same ballot *)
            match Txn_log.epoch_accept t.txn_log ~item:st.ei_item ~epoch with
            | Some (_, s) -> s
            | None -> buffered_seal st
          in
          run_propose t st ~epoch ~ballot ~seal
        else run_collect t st ~epoch ~ballot
      else resend_intents t st cand
    end
  end

(* Phase 2 for (item, epoch) at [ballot]: our own durable accept is both
   our vote and the value the ballot is forever bound to. *)
and run_propose t st ~epoch ~ballot ~seal =
  let item = st.ei_item in
  st.ei_busy <- true;
  Txn_log.record_epoch_accept t.txn_log ~item ~epoch ~ballot ~seal ~at:(now t);
  let subs = epoch_subs t st in
  let needed = epoch_quorum subs in
  let others = List.filter (fun a -> not (Address.equal a t.addr)) subs in
  let total = List.length others in
  let votes = ref 1 and replies = ref 0 and closed = ref false in
  let win () =
    if not !closed then begin
      closed := true;
      st.ei_busy <- false;
      if st.ei_applied + 1 = epoch then begin
        apply_seal t st ~epoch ~seal ~proposer:true;
        drain_stash t st;
        broadcast_commits t st
      end;
      ensure_pump t st
    end
  in
  if !votes >= needed then win ()
  else
    List.iter
      (fun peer ->
        Rpc.call t.shared.rpc ~src:t.addr ~dst:peer
          ~timeout:(config t).Config.rpc_timeout
          (Protocol.Epoch_propose { item; epoch; ballot; seal })
          (fenced t (fun response ->
               incr replies;
               (match response with
               | Ok (Protocol.Epoch_vote { accepted = true; _ }) ->
                   incr votes;
                   if !votes >= needed then win ()
               | Ok _ | Error _ -> ());
               if !replies = total && not !closed then begin
                 closed := true;
                 st.ei_busy <- false;
                 ensure_pump t st
               end)))
      others

(* Phase 1: a takeover candidate collects promises plus anything already
   accepted or sealed, so it decides the same value the crashed sequencer
   may have sealed — the epoch is presumed unsealed only when no acceptor
   in the quorum reports a value. *)
and run_collect t st ~epoch ~ballot =
  let item = st.ei_item in
  st.ei_busy <- true;
  t.metrics.Update.Metrics.epoch_takeovers <-
    t.metrics.Update.Metrics.epoch_takeovers + 1;
  Txn_log.record_epoch_promise t.txn_log ~item ~epoch ~ballot ~at:(now t);
  let subs = epoch_subs t st in
  let needed = epoch_quorum subs in
  let others = List.filter (fun a -> not (Address.equal a t.addr)) subs in
  let total = List.length others in
  let grants = ref 1 and replies = ref 0 and closed = ref false in
  let sealed_found = ref (Txn_log.epoch_seal t.txn_log ~item ~epoch) in
  let best = ref (Txn_log.epoch_accept t.txn_log ~item ~epoch) in
  let ahead = ref None in
  let finish_phase1 () =
    if not !closed then begin
      closed := true;
      match !sealed_found with
      | Some seal ->
          st.ei_busy <- false;
          if st.ei_applied + 1 = epoch then begin
            apply_seal t st ~epoch ~seal ~proposer:false;
            drain_stash t st
          end;
          broadcast_commits t st;
          ensure_pump t st
      | None -> (
          match !ahead with
          | Some peer ->
              (* a peer already applied this epoch but its seal sits below
                 its snapshot floor: catch up by pulling instead *)
              st.ei_busy <- false;
              Rpc.call t.shared.rpc ~src:t.addr ~dst:peer
                ~timeout:(config t).Config.rpc_timeout
                (Protocol.Epoch_pull { item; from_epoch = st.ei_applied })
                (fenced t (fun response ->
                     (match response with
                     | Ok (Protocol.Epoch_seals { seals; _ }) ->
                         apply_pulled_seals t st seals
                     | Ok _ | Error _ -> ());
                     ensure_pump t st))
          | None ->
              let seal =
                match !best with Some (_, s) -> s | None -> buffered_seal st
              in
              run_propose t st ~epoch ~ballot ~seal)
    end
  in
  if !grants >= needed then finish_phase1 ()
  else
    List.iter
      (fun peer ->
        Rpc.call t.shared.rpc ~src:t.addr ~dst:peer
          ~timeout:(config t).Config.rpc_timeout
          (Protocol.Epoch_collect { item; epoch; ballot })
          (fenced t (fun response ->
               incr replies;
               (match response with
               | Ok
                   (Protocol.Epoch_state
                     { promised; sealed; accepted; applied_epoch; _ }) ->
                   (match sealed with
                   | Some s -> sealed_found := Some s
                   | None -> if applied_epoch >= epoch then ahead := Some peer);
                   (match accepted with
                   | Some (b, s) -> (
                       match !best with
                       | Some (b', _) when b' >= b -> ()
                       | Some _ | None -> best := Some (b, s))
                   | None -> ());
                   if promised <= ballot then begin
                     incr grants;
                     if !grants >= needed then finish_phase1 ()
                   end
               | Ok _ | Error _ -> ());
               if !replies = total && not !closed then begin
                 closed := true;
                 st.ei_busy <- false;
                 ensure_pump t st
               end)))
      others

and resend_intents t st cand =
  let item = st.ei_item in
  Hashtbl.iter
    (fun _ (i : Txn_log.intent) ->
      t.metrics.Update.Metrics.epoch_intents_resent <-
        t.metrics.Update.Metrics.epoch_intents_resent + 1;
      Rpc.call t.shared.rpc ~src:t.addr ~dst:cand
        ~timeout:(config t).Config.rpc_timeout
        (Protocol.Epoch_intent
           { item; txid = i.Txn_log.i_txid; origin = i.Txn_log.i_origin;
             delta = i.Txn_log.i_delta })
        (fenced t (function
          | Ok (Protocol.Epoch_intent_ack { txid; sealed = true }) ->
              (* sealed in an epoch this replica has not applied yet *)
              if not (Hashtbl.mem st.ei_sealed txid) then request_pull t st
          | Ok _ | Error _ -> ())))
    st.ei_buffer

and request_pull t st =
  let others =
    List.filter (fun a -> not (Address.equal a t.addr)) (epoch_subs t st)
  in
  match others with
  | [] -> ()
  | _ ->
      let target = List.nth others (st.ei_attempts mod List.length others) in
      Rpc.call t.shared.rpc ~src:t.addr ~dst:target
        ~timeout:(config t).Config.rpc_timeout
        (Protocol.Epoch_pull { item = st.ei_item; from_epoch = st.ei_applied })
        (fenced t (function
          | Ok (Protocol.Epoch_seals { seals; _ }) -> apply_pulled_seals t st seals
          | Ok _ | Error _ -> ()))

(* Close the open epoch immediately once a full batch is buffered, instead
   of waiting out the pump tick. *)
let maybe_close t st =
  if
    (not st.ei_busy) && (not (is_down t))
    && (not (Hashtbl.mem t.quarantined st.ei_item))
    && Hashtbl.length st.ei_buffer >= (config t).Config.epoch_batch
  then begin
    let epoch = st.ei_applied + 1 in
    if Address.equal (epoch_candidate t st ~epoch ~ballot:0) t.addr then
      let seal =
        match Txn_log.epoch_accept t.txn_log ~item:st.ei_item ~epoch with
        | Some (_, s) -> s
        | None -> buffered_seal st
      in
      run_propose t st ~epoch ~ballot:0 ~seal
  end

(* Writer path: durable intent, then asynchronous replication — the
   client's continuation fires when a seal containing the txid is applied
   locally. No cross-site round-trip on the submission path. *)
let epoch_update t ~item ~delta ~finish =
  let st = Hashtbl.find t.epochs item in
  if tracing t then
    span_instant t ~category:"update" "update.epoch"
      ~fields:[ ("item", item); ("delta", string_of_int delta) ];
  let txid = fresh_txid t in
  Txn_log.record_intent t.txn_log ~txid ~origin:t.addr ~item ~delta ~at:(now t);
  Hashtbl.replace st.ei_buffer txid
    { Txn_log.i_txid = txid; i_origin = t.addr; i_delta = delta };
  Hashtbl.replace st.ei_waiters txid finish;
  maybe_close t st;
  ensure_pump t st

(* Convergence force-flush, the epoch-class analogue of
   [flush_sync ~force]: one immediate pump step per item plus a commit
   re-broadcast to laggards, so a quiescing cluster converges without
   waiting out pump ticks. *)
let flush_epochs t =
  if not (is_down t) then
    Hashtbl.iter
      (fun item st ->
        if not (Hashtbl.mem t.quarantined item) then begin
          broadcast_commits t st;
          if Hashtbl.length st.ei_buffer > 0 || Hashtbl.length st.ei_stash > 0 then begin
            pump_step t st;
            ensure_pump t st
          end
        end)
      t.epochs

let epoch_applied t ~item =
  Option.map (fun st -> st.ei_applied) (epoch_state t ~item)

let epoch_unsealed t =
  List.length
    (List.filter
       (fun (ie : Txn_log.intent_entry) ->
         not (Hashtbl.mem t.quarantined ie.Txn_log.in_item))
       (Txn_log.unsealed_intents t.txn_log))

(* --- epoch request handlers (server side) --- *)

let handle_epoch_intent t ~item ~txid ~origin ~delta ~reply =
  match epoch_state t ~item with
  | None -> reply (Protocol.Bad_request "not an epoch item")
  | Some st ->
      if Hashtbl.mem t.quarantined item then
        reply (Protocol.Bad_request "item quarantined")
      else if Hashtbl.mem st.ei_sealed txid then
        reply (Protocol.Epoch_intent_ack { txid; sealed = true })
      else begin
        if not (Hashtbl.mem st.ei_buffer txid) then
          Hashtbl.replace st.ei_buffer txid
            { Txn_log.i_txid = txid; i_origin = origin; i_delta = delta };
        reply (Protocol.Epoch_intent_ack { txid; sealed = false });
        maybe_close t st;
        ensure_pump t st
      end

let handle_epoch_propose t ~src ~item ~epoch ~ballot ~seal ~reply =
  match epoch_state t ~item with
  | None -> reply (Protocol.Bad_request "not an epoch item")
  | Some st ->
      if Hashtbl.mem t.quarantined item then
        reply (Protocol.Bad_request "item quarantined")
      else if epoch <= st.ei_applied then begin
        reply (Protocol.Epoch_vote { item; epoch; accepted = false });
        (* the proposer is behind a decided epoch: push it the seal so it
           cannot re-decide the epoch with a different value *)
        match Txn_log.epoch_seal t.txn_log ~item ~epoch with
        | Some seal ->
            Rpc.call t.shared.rpc ~src:t.addr ~dst:src
              ~timeout:(config t).Config.rpc_timeout
              (Protocol.Epoch_commit { item; epoch; seal })
              (fenced t (fun _ -> ()))
        | None -> ()
      end
      else if epoch <= st.ei_fence || ballot < epoch_promised t st ~epoch then
        reply (Protocol.Epoch_vote { item; epoch; accepted = false })
      else begin
        Txn_log.record_epoch_accept t.txn_log ~item ~epoch ~ballot ~seal ~at:(now t);
        reply (Protocol.Epoch_vote { item; epoch; accepted = true })
      end

let handle_epoch_commit t ~src ~item ~epoch ~seal ~reply =
  match epoch_state t ~item with
  | None -> reply (Protocol.Bad_request "not an epoch item")
  | Some st ->
      if Hashtbl.mem t.quarantined item then
        reply (Protocol.Bad_request "item quarantined")
      else begin
        if epoch = st.ei_applied + 1 then begin
          apply_seal t st ~epoch ~seal ~proposer:false;
          drain_stash t st
        end
        else if epoch > st.ei_applied then begin
          if not (Hashtbl.mem st.ei_stash epoch) then
            Hashtbl.replace st.ei_stash epoch seal;
          Rpc.call t.shared.rpc ~src:t.addr ~dst:src
            ~timeout:(config t).Config.rpc_timeout
            (Protocol.Epoch_pull { item; from_epoch = st.ei_applied })
            (fenced t (function
              | Ok (Protocol.Epoch_seals { seals; _ }) -> apply_pulled_seals t st seals
              | Ok _ | Error _ -> ()))
        end;
        reply (Protocol.Epoch_commit_ack { item; epoch; applied_epoch = st.ei_applied });
        ensure_pump t st
      end

let handle_epoch_pull t ~item ~from_epoch ~reply =
  match epoch_state t ~item with
  | None -> reply (Protocol.Bad_request "not an epoch item")
  | Some _ ->
      let seals =
        List.filter_map
          (fun (it, e, seal) ->
            if String.equal it item && e > from_epoch then Some (e, seal) else None)
          (Txn_log.epoch_seals t.txn_log)
      in
      reply (Protocol.Epoch_seals { item; seals })

let handle_epoch_collect t ~item ~epoch ~ballot ~reply =
  match epoch_state t ~item with
  | None -> reply (Protocol.Bad_request "not an epoch item")
  | Some st ->
      if Hashtbl.mem t.quarantined item then
        reply (Protocol.Bad_request "item quarantined")
      else begin
        let fenced_off = epoch <= st.ei_fence in
        if (not fenced_off) && ballot >= epoch_promised t st ~epoch then
          Txn_log.record_epoch_promise t.txn_log ~item ~epoch ~ballot ~at:(now t);
        reply
          (Protocol.Epoch_state
             {
               item;
               epoch;
               (* a fenced acceptor never grants: report an unbeatable
                  promise so the collector cannot count it *)
               promised =
                 (if fenced_off then max_int else epoch_promised t st ~epoch);
               sealed = Txn_log.epoch_seal t.txn_log ~item ~epoch;
               accepted = Txn_log.epoch_accept t.txn_log ~item ~epoch;
               applied_epoch = st.ei_applied;
             })
      end

(* Rebuild the in-memory epoch state from the durable log: the applied
   prefix from contiguous seal records (above any snapshot floor), the
   dedup set from seal contents, and the writer's own unsealed intents
   back into the buffer so the pump re-sends them. *)
let rebuild_epoch_state t =
  Hashtbl.iter
    (fun item st ->
      Hashtbl.reset st.ei_buffer;
      Hashtbl.reset st.ei_sealed;
      Hashtbl.reset st.ei_stash;
      Hashtbl.reset st.ei_waiters;
      Hashtbl.reset st.ei_acked;
      st.ei_attempts <- 0;
      st.ei_pump <- false;
      st.ei_busy <- false;
      st.ei_applied <- Txn_log.max_contiguous_seal t.txn_log ~item;
      st.ei_fence <- Stdlib.max st.ei_fence (Txn_log.epoch_floor t.txn_log ~item);
      List.iter
        (fun (it, _epoch, seal) ->
          if String.equal it item then
            List.iter
              (fun (i : Txn_log.intent) -> Hashtbl.replace st.ei_sealed i.Txn_log.i_txid ())
              seal)
        (Txn_log.epoch_seals t.txn_log);
      List.iter
        (fun (ie : Txn_log.intent_entry) ->
          if
            String.equal ie.Txn_log.in_item item
            && Address.equal ie.Txn_log.in_origin t.addr
          then
            Hashtbl.replace st.ei_buffer ie.Txn_log.in_txid
              {
                Txn_log.i_txid = ie.Txn_log.in_txid;
                i_origin = ie.Txn_log.in_origin;
                i_delta = ie.Txn_log.in_delta;
              })
        (Txn_log.unsealed_intents t.txn_log);
      ensure_pump t st)
    t.epochs

(* --- dynamic membership --- *)

(* Serve a joiner with the current replica plus the sync counters already
   folded into it: our own cumulative counters and everything we have
   applied from other origins. The joiner seeds its receiver state with
   these, so later notices apply only what the snapshot missed. *)
let handle_join t ~wanted ~reply =
  let want =
    match wanted with
    | None -> fun _ -> true
    | Some items ->
        let set = Hashtbl.create (List.length items) in
        List.iter (fun i -> Hashtbl.replace set i ()) items;
        fun item -> Hashtbl.mem set item
  in
  (* A quarantined row is exactly the state a joiner must never copy;
     send it donor-shopping instead. *)
  if Hashtbl.fold (fun item () acc -> acc || want item) t.quarantined false then
    reply (Protocol.Bad_request "item quarantined at donor")
  else begin
    (* Undo-based transactions write in place, so the raw table shows
       tentative 2PC deltas that may yet abort. Serve committed state:
       subtract every prepared-but-undecided delta, and list those
       transactions as [pending] so a repairing joiner can watch them
       resolve — a commit after the snapshot is otherwise invisible to
       it, non-regular items having no sync counters. *)
    let tentative = Hashtbl.create 8 in
    let note_tentative item delta =
      Hashtbl.replace tentative item
        (delta + Option.value ~default:0 (Hashtbl.find_opt tentative item))
    in
    let pending = ref [] in
    Hashtbl.iter
      (fun txid (p : participant_txn) ->
        if want p.p_item then begin
          note_tentative p.p_item p.p_delta;
          pending :=
            (txid, Address.to_int p.p_coordinator, p.p_item, p.p_delta) :: !pending
        end)
      t.participant_txns;
    Hashtbl.iter
      (fun txid (c : coord) ->
        if Two_phase.Coordinator.decision c.machine = None then
          match Txn_log.find t.txn_log ~txid with
          | Some e when want e.Txn_log.item ->
              if c.local_txn <> None && not c.local_finalized then
                note_tentative e.Txn_log.item e.Txn_log.delta;
              pending :=
                (txid, Address.to_int t.addr, e.Txn_log.item, e.Txn_log.delta)
                :: !pending
          | Some _ | None -> ())
      t.coordinators;
    let rows =
      Table.fold (Database.table t.db stock_table) ~init:[] ~f:(fun acc item row ->
          if want item then
            let amount =
              Value.as_int row.(0)
              - Option.value ~default:0 (Hashtbl.find_opt tentative item)
            in
            (item, amount, Value.as_bool row.(1)) :: acc
          else acc)
      |> List.rev
    in
    let own =
      Hashtbl.fold
        (fun item s acc ->
          if want item then (Address.to_int t.addr, item, s.version, s.cum) :: acc
          else acc)
        t.sync_out []
    in
    let applied =
      Hashtbl.fold
        (fun (origin, item) (version, counter) acc ->
          if want item then (origin, item, version, counter) :: acc else acc)
        t.applied_sync []
    in
    let epochs =
      Hashtbl.fold
        (fun item st acc -> if want item then (item, st.ei_applied) :: acc else acc)
        t.epochs []
    in
    reply
      (Protocol.Join_snapshot
         { rows; sync_state = own @ applied; pending = !pending; epochs })
  end

(* Apply one join snapshot: overwrite the locally-bootstrapped rows with
   the live amounts and seed the sync receiver state with the counters
   already folded into them. *)
let apply_join_snapshot t ~rows ~sync_state ~epochs =
  let txn = Database.begin_txn t.db in
  let ok =
    List.for_all
      (fun (item, amount, _regular) ->
        match
          Database.set_col txn ~table:stock_table ~key:item ~col:"amount" (Value.Int amount)
        with
        | Ok () -> true
        | Error _ -> false)
      rows
  in
  if ok then begin
    Database.commit txn;
    List.iter
      (fun (origin, item, version, counter) ->
        Hashtbl.replace t.applied_sync (origin, item) (version, counter);
        if version > Option.value ~default:0 (Hashtbl.find_opt t.applied_high origin) then
          Hashtbl.replace t.applied_high origin version)
      sync_state;
    (* the snapshot rows already fold every seal through the donor's
       applied epoch: record the floor so this log never re-applies them *)
    List.iter
      (fun (item, applied) ->
        match Hashtbl.find_opt t.epochs item with
        | Some st when applied > st.ei_applied ->
            Txn_log.record_epoch_floor t.txn_log ~item ~epoch:applied ~at:(now t);
            st.ei_applied <- applied
        | Some _ | None -> ())
      epochs;
    true
  end
  else begin
    Database.abort txn;
    false
  end

(* Fetch the initial data (the paper's initial delivery). Under full
   replication: one snapshot from the global base. Under partial
   replication there is no site that holds everything — the joiner groups
   its interest set by per-item base and fetches one scoped snapshot per
   distinct base, so join traffic is bounded by the interest set, never by
   the catalogue. *)
let join t callback =
  let root = span_start t ~category:"membership" "membership.join" in
  let callback result =
    (match result with Error _ -> span_warn t root | Ok () -> ());
    span_end t root;
    callback result
  in
  let fetch ~dst ~wanted k =
    Rpc.call t.shared.rpc ~src:t.addr ~dst ~timeout:(config t).Config.rpc_timeout
      ~retry:(retry_policy t) ~span:root
      (Protocol.Join_request { wanted })
      (fenced t (fun response ->
           match response with
           | Ok (Protocol.Join_snapshot { rows; sync_state; pending = _; epochs }) ->
               if apply_join_snapshot t ~rows ~sync_state ~epochs then
                 k (Ok (List.length rows))
               else k (Error Update.Txn_aborted)
           | Ok _ -> k (Error Update.Txn_aborted)
           | Error Rpc.Timeout -> k (Error Update.Unreachable)))
  in
  if Topology.is_full (topology t) then begin
    if Address.equal t.addr t.base_addr then callback (Ok ())
    else
      fetch ~dst:t.base_addr ~wanted:None (function
        | Ok rows ->
            trace t ~category:"membership" "%a joined (%d items from base)" Address.pp t.addr
              rows;
            callback (Ok ())
        | Error e -> callback (Error e))
  end
  else begin
    (* group this site's interest set (= its bootstrapped rows) by base *)
    let by_base = Hashtbl.create 8 in
    Table.fold (Database.table t.db stock_table) ~init:() ~f:(fun () item _ ->
        let b = base_addr_for t ~item in
        if not (Address.equal b t.addr) then
          Hashtbl.replace by_base b (item :: Option.value ~default:[] (Hashtbl.find_opt by_base b)));
    let groups = Hashtbl.fold (fun b items acc -> (b, items) :: acc) by_base [] in
    match groups with
    | [] -> callback (Ok ())
    | _ ->
        let outstanding = ref (List.length groups) in
        let failed = ref None in
        let total_rows = ref 0 in
        List.iter
          (fun (dst, items) ->
            fetch ~dst ~wanted:(Some items) (fun result ->
                (match result with
                | Ok n -> total_rows := !total_rows + n
                | Error e -> if !failed = None then failed := Some e);
                decr outstanding;
                if !outstanding = 0 then
                  match !failed with
                  | Some e -> callback (Error e)
                  | None ->
                      trace t ~category:"membership"
                        "%a joined (%d items from %d bases)" Address.pp t.addr !total_rows
                        (List.length groups);
                      callback (Ok ())))
          groups
  end

(* --- public update entry point: the checking function --- *)

let submit_update t ~item ~delta callback =
  let started = now t in
  t.metrics.Update.Metrics.submitted <- t.metrics.Update.Metrics.submitted + 1;
  let finish =
    track_inflight t (fun outcome ->
        let result = { Update.outcome; latency = Time.diff (now t) started } in
        Update.Metrics.record t.metrics result;
        callback result)
  in
  if is_down t then finish (Update.Rejected Update.Unreachable)
  else if not (item_known t ~item) then
    finish (Update.Rejected (Update.Unknown_item item))
  else if Hashtbl.mem t.quarantined item then
    (* under repair after storage damage: refuse rather than write
       through an untrusted replica — corruption may cost availability,
       never consistency *)
    finish (Update.Rejected Update.Unreachable)
  else
    match (config t).Config.mode with
    | Config.Centralized -> centralized_update t ~item ~delta ~finish
    | Config.Autonomous ->
        (* The checking function: epoch class by catalogue, else AV
           defined => Delay Update, otherwise Immediate Update. *)
        if Hashtbl.mem t.epochs item then epoch_update t ~item ~delta ~finish
        else if Av_table.is_defined t.av ~item then delay_update t ~item ~delta ~finish
        else immediate_update t ~item ~delta ~finish

(* Reads with heterogeneous consistency: a local read is free and possibly
   stale (the retailer requirement); an authoritative read round-trips to
   the base replica (the maker requirement) and costs one correspondence. *)
let read_local t ~item =
  if Hashtbl.mem t.quarantined item then None
  else
    match amount_of t ~item with
    | Some v when Mutation.enabled Mutation.Forget_own_writes ->
      (* Mutation: subtract the site's own not-yet-flushed deltas — the
         replica "forgets" writes this session already committed. *)
      let pending =
        Option.value ~default:0 (List.assoc_opt item (pending_sync_deltas t))
      in
      Some (v - pending)
  | r -> r

let read_authoritative t ~item callback =
  let base_addr = base_addr_for t ~item in
  if is_down t then
    ignore (Engine.schedule (engine t) ~delay:Time.zero (fun () -> callback (Error Update.Unreachable)))
  else if Address.equal t.addr base_addr then callback (Ok (amount_of t ~item))
  else begin
    let root = span_start t ~category:"read" "read.authoritative" in
    span_field t root "item" item;
    let callback result =
      (match result with Error _ -> span_warn t root | Ok _ -> ());
      span_end t root;
      callback result
    in
    Rpc.call t.shared.rpc ~src:t.addr ~dst:base_addr
      ~timeout:(config t).Config.rpc_timeout ~retry:(retry_policy t) ~span:root
      (Protocol.Read_request { item })
      (fenced t (fun response ->
           match response with
           | Ok (Protocol.Read_value { amount }) -> callback (Ok amount)
           | Ok _ -> callback (Error Update.Txn_aborted)
           | Error Rpc.Timeout -> callback (Error Update.Unreachable)))
  end

let submit_batch t ~deltas callback =
  let started = now t in
  t.metrics.Update.Metrics.submitted <- t.metrics.Update.Metrics.submitted + 1;
  let finish =
    track_inflight t (fun outcome ->
        let result = { Update.outcome; latency = Time.diff (now t) started } in
        Update.Metrics.record t.metrics result;
        callback result)
  in
  if is_down t || (config t).Config.mode = Config.Centralized then
    finish (Update.Rejected Update.Unreachable)
  else begin
    let bad =
      List.find_map
        (fun (item, _) ->
          if not (item_known t ~item) then Some (Update.Unknown_item item)
          else if Hashtbl.mem t.quarantined item then Some Update.Unreachable
          else if not (Av_table.is_defined t.av ~item) then Some (Update.Not_regular item)
          else None)
        deltas
    in
    match bad with
    | Some reason -> finish (Update.Rejected reason)
    | None -> batch_update t ~deltas ~finish
  end

(* --- fault injection --- *)

let crash t =
  trace t ~level:Trace.Warn ~category:"fault" "%a crashed" Address.pp t.addr;
  (* Capture what the disk held at the instant of death, with any armed
     faults applied. Guarded on [armed]: serialising the logs costs real
     work and a fault-free crash must stay free. *)
  if Fault_sink.armed t.wal_sink then
    Fault_sink.crash t.wal_sink ~segment_frames:(config t).Config.segment_frames
      ~text:(Wal.to_string (Database.wal t.db));
  if Fault_sink.armed t.txn_sink then
    Fault_sink.crash t.txn_sink ~segment_frames:(config t).Config.segment_frames
      ~text:(Txn_log.to_string t.txn_log);
  if tracing t then
    span_instant t ~status:Avdb_obs.Span.Warn ~category:"fault" "fault.crash"
      ~fields:[ ("epoch", string_of_int t.epoch) ];
  (* Bumping the epoch fences every closure created so far: timers and RPC
     continuations belonging to the dead incarnation become no-ops. *)
  t.epoch <- t.epoch + 1;
  Network.set_down (network t) t.addr true;
  (* Fail client operations caught in flight: their fenced continuations
     will never fire, and the colocated client sees the crash directly. *)
  let pending =
    Hashtbl.fold (fun op finish acc -> (op, finish) :: acc) t.inflight []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Hashtbl.reset t.inflight;
  List.iter (fun (_, finish) -> finish (Update.Rejected Update.Unreachable)) pending

(* Re-install one in-doubt participant transaction from its durable Start
   record: re-acquire the exclusive lock (always free right after
   recovery — at most one in-doubt txn can exist per item, precisely
   because prepare holds the exclusive lock), redo the tentative write,
   re-register with the 2PC machine and restart the termination checks
   with a fresh budget. *)
let reinstall_in_doubt t (e : Txn_log.entry) =
  let txid = e.Txn_log.txid in
  Lock_manager.acquire t.locks ~owner:txid ~key:e.Txn_log.item Lock_manager.Exclusive
    ~timeout:(config t).Config.lock_timeout
    (fenced t (fun lock_result ->
         match lock_result with
         | Error `Timeout ->
             failwith
               (Printf.sprintf "Site.recover: lock unavailable for in-doubt tx%d" txid)
         | Ok () ->
             let txn = Database.begin_txn t.db in
             (match
                Database.add_int txn ~table:stock_table ~key:e.Txn_log.item ~col:"amount"
                  e.Txn_log.delta
              with
             | Ok _ -> ()
             | Error err ->
                 failwith (Printf.sprintf "Site.recover: re-apply tx%d: %s" txid err));
             ignore (Two_phase.Participant.on_prepare t.participant ~txid ~can_apply:true);
             let psp = span_start t ~category:"2pc" "2pc.participant.recovered" in
             span_field_int t psp "txid" txid;
             span_field t psp "item" e.Txn_log.item;
             Hashtbl.replace t.participant_txns txid
               {
                 p_txn = txn;
                 p_coordinator = e.Txn_log.coordinator;
                 p_cohort = e.Txn_log.cohort;
                 p_item = e.Txn_log.item;
                 p_delta = e.Txn_log.delta;
                 p_span = psp;
                 p_queries = 0;
               };
             t.metrics.Update.Metrics.in_doubt_recovered <-
               t.metrics.Update.Metrics.in_doubt_recovered + 1;
             trace t ~category:"2pc" "tx%d re-installed in doubt at %a" txid Address.pp
               t.addr;
             schedule_termination_check t ~txid))

(* A coordination whose decision is logged but whose ack round never
   closed: rebuild the machine in the ack-collection phase and push the
   decision again, a bounded number of rounds (the participants' pull
   side is the unconditional safety net, so giving up the push cannot
   lose the outcome — it only delays stragglers). *)
let install_recovered_coordinator t ~txid ~cohort ~item decision =
  if cohort = [] then Txn_log.record_end t.txn_log ~txid ~at:(now t)
  else begin
    let machine =
      Two_phase.Coordinator.recovered ~txid ~participants:cohort
        ~base:(base_addr_for t ~item) decision
    in
    let coord =
      { machine; finish = (fun _ -> ()); local_txn = None; local_finalized = true }
    in
    Hashtbl.replace t.coordinators txid coord;
    let rec execute actions = List.iter execute_one actions
    and execute_one = function
      | Two_phase.Coordinator.Broadcast_decision d ->
          t.metrics.Update.Metrics.decision_rebroadcasts <-
            t.metrics.Update.Metrics.decision_rebroadcasts + 1;
          if tracing t then
            span_instant t ~category:"2pc" "2pc.rebroadcast"
              ~fields:
                [
                  ("txid", string_of_int txid);
                  ("decision", Format.asprintf "%a" Two_phase.pp_decision d);
                ];
          List.iter
            (fun p ->
              Rpc.call t.shared.rpc ~src:t.addr ~dst:p
                ~timeout:(config t).Config.ack_timeout
                (Protocol.Decision { txid; decision = d })
                (fenced t (fun response ->
                     match response with
                     | Ok (Protocol.Decision_ack _) ->
                         execute (Two_phase.Coordinator.on_ack machine ~from:p)
                     | Ok _ | Error _ -> ())))
            cohort
      | Two_phase.Coordinator.Completed _ ->
          (* the submitting client died with the crashed incarnation;
             [recovered] marks completion as already emitted, so this
             cannot happen — and must never call anyone's continuation *)
          ()
      | Two_phase.Coordinator.Cleanup _ ->
          Txn_log.record_end t.txn_log ~txid ~at:(now t);
          Hashtbl.remove t.coordinators txid
      | Two_phase.Coordinator.Broadcast_prepare -> ()
    in
    let rec round n =
      if Hashtbl.mem t.coordinators txid && not (is_down t) then
        if n >= (config t).Config.rebroadcast_rounds then
          trace t ~level:Trace.Warn ~category:"2pc"
            "tx%d rebroadcast gave up after %d rounds at %a (pull path takes over)" txid n
            Address.pp t.addr
        else begin
          execute (Two_phase.Coordinator.rebroadcast machine);
          ignore
            (Engine.schedule (engine t) ~delay:(config t).Config.rebroadcast_interval
               (fenced t (fun () -> round (n + 1))))
        end
    in
    round 0
  end

(* Adjudicate one of our own outcome-less coordinations after log damage
   (amnesia): presumed abort is off the table — the outcome record may
   be among what the log lost — so ask the cohort. Any surviving
   decision record wins; otherwise abort is provably consistent (see
   [adjudicate]). The verdict is logged and pushed like any recovered
   decision. *)
let adjudicate_own t (e : Txn_log.entry) =
  let txid = e.Txn_log.txid in
  let fellows = List.filter (fun a -> not (Address.equal a t.addr)) e.Txn_log.cohort in
  adjudicate t ~txid ~fellows
    ~still_wanted:(fun () ->
      match Txn_log.find t.txn_log ~txid with
      | Some { Txn_log.outcome = None; _ } -> true
      | Some _ | None -> false)
    ~decide:(fun d ->
      trace t ~category:"2pc" "tx%d adjudicated %a at recovering coordinator %a" txid
        Two_phase.pp_decision d Address.pp t.addr;
      Txn_log.record_outcome t.txn_log ~txid d ~at:(now t);
      install_recovered_coordinator t ~txid ~cohort:e.Txn_log.cohort ~item:e.Txn_log.item
        d)

(* A prepared participant entry on a quarantined item. The tentative
   write must NOT be redone: the row is untrusted and under repair, and
   the repair snapshot plus its pending-transaction watches carry the
   data. What remains is bookkeeping — learn the outcome and record it,
   so the txid is poisoned against late prepares and fellow askers get a
   real answer instead of an eternal [Peer_prepared]. *)
let resolve_orphan t (e : Txn_log.entry) =
  let txid = e.Txn_log.txid in
  let coordinator = e.Txn_log.coordinator in
  let record d = Txn_log.record_outcome t.txn_log ~txid d ~at:(now t) in
  let unresolved () =
    match Txn_log.find t.txn_log ~txid with
    | Some { Txn_log.outcome = None; _ } -> true
    | Some _ | None -> false
  in
  let adjudicate_fellows () =
    let fellows =
      List.filter
        (fun a -> not (Address.equal a t.addr || Address.equal a coordinator))
        e.Txn_log.cohort
    in
    adjudicate t ~txid ~fellows ~still_wanted:unresolved ~decide:record
  in
  let rec poll attempt =
    if attempt < max_decision_queries && unresolved () && not (is_down t) then
      Rpc.call t.shared.rpc ~src:t.addr ~dst:coordinator
        ~timeout:(config t).Config.rpc_timeout
        (Protocol.Query_decision { txid })
        (fenced t (fun response ->
             match response with
             | Ok (Protocol.Decision_status { status = Protocol.Decided d; _ }) ->
                 record d
             | Ok (Protocol.Decision_status { status = Protocol.Unknown_txn; _ }) ->
                 record Two_phase.Abort
             | Ok (Protocol.Decision_status { status = Protocol.No_record; _ }) ->
                 adjudicate_fellows ()
             | Ok _ | Error _ ->
                 ignore
                   (Engine.schedule (engine t) ~delay:(config t).Config.repair_interval
                      (fenced t (fun () -> poll (attempt + 1))))))
  in
  poll 0

(* Replay the durable protocol log into live 2PC state. Participant-side
   in-doubt entries are re-installed as prepared transactions; our own
   coordinations are closed out: no outcome logged means we crashed
   before deciding, and since the outcome record always precedes the
   Commit broadcast, abort is the only possible verdict (presumed
   abort) — log it and tell the cohort. A logged decision without an
   [End] restarts the ack round. Both presumptions are gated on an
   intact log: under amnesia the entry is adjudicated with the cohort
   instead, and in-doubt entries on quarantined items resolve
   outcome-only. *)
let replay_protocol_log t =
  List.iter
    (fun (e : Txn_log.entry) ->
      (* keep the txid allocator above everything we ever coordinated *)
      if Address.equal e.Txn_log.coordinator t.addr then begin
        let seq = e.Txn_log.txid - (Address.to_int t.addr * 1_000_000) in
        if seq >= t.next_txn_seq then t.next_txn_seq <- seq + 1
      end)
    (Txn_log.entries t.txn_log);
  (* epoch intents draw from the same allocator *)
  List.iter
    (fun (ie : Txn_log.intent_entry) ->
      if Address.equal ie.Txn_log.in_origin t.addr then begin
        let seq = ie.Txn_log.in_txid - (Address.to_int t.addr * 1_000_000) in
        if seq >= t.next_txn_seq then t.next_txn_seq <- seq + 1
      end)
    (Txn_log.intents t.txn_log);
  List.iter
    (fun (e : Txn_log.entry) ->
      let txid = e.Txn_log.txid in
      if Address.equal e.Txn_log.coordinator t.addr then begin
        match e.Txn_log.outcome with
        | None when t.amnesia ->
            trace t ~level:Trace.Warn ~category:"2pc"
              "tx%d outcome possibly lost; adjudicating at %a" txid Address.pp t.addr;
            adjudicate_own t e
        | None ->
            trace t ~level:Trace.Warn ~category:"2pc"
              "tx%d presumed aborted on recovery at %a" txid Address.pp t.addr;
            Txn_log.record_outcome t.txn_log ~txid Two_phase.Abort ~at:(now t);
            install_recovered_coordinator t ~txid ~cohort:e.Txn_log.cohort
              ~item:e.Txn_log.item Two_phase.Abort
        | Some d when not e.Txn_log.ended ->
            install_recovered_coordinator t ~txid ~cohort:e.Txn_log.cohort
              ~item:e.Txn_log.item d
        | Some _ -> ()
      end
      else if e.Txn_log.outcome = None then begin
        if Hashtbl.mem t.quarantined e.Txn_log.item then resolve_orphan t e
        else reinstall_in_doubt t e
      end)
    (Txn_log.entries t.txn_log)

(* --- corruption-aware recovery and replica repair --- *)

let stock_schema =
  Schema.create
    [
      { Schema.name = "amount"; ty = Value.Tint };
      { Schema.name = "regular"; ty = Value.Tbool };
    ]

let history_schema =
  Schema.create
    [
      { Schema.name = "item"; ty = Value.Tstr };
      { Schema.name = "delta"; ty = Value.Tint };
      { Schema.name = "path"; ty = Value.Tstr };
    ]

let note_storage_damage t ~label (r : Segmented.report) =
  t.metrics.Update.Metrics.checksum_failures <-
    t.metrics.Update.Metrics.checksum_failures + Segmented.checksum_failures r;
  t.metrics.Update.Metrics.segments_quarantined <-
    t.metrics.Update.Metrics.segments_quarantined
    + List.length
        (List.filter
           (function
             | Segmented.Corrupt _ | Segmented.Missing_segment _ -> true
             | Segmented.Torn_tail -> false)
           r.Segmented.damage);
  List.iter
    (fun d ->
      trace t ~level:Trace.Warn ~category:"storage" "%a %s: %a" Address.pp t.addr label
        Segmented.pp_damage d)
    r.Segmented.damage;
  if tracing t then
    span_instant t ~status:Avdb_obs.Span.Warn ~category:"storage" "storage.damage"
      ~fields:
        [ ("log", label); ("lost_frames", string_of_int r.Segmented.lost_frames) ]

(* Rebuild replica rows lost with WAL damage from metadata that lives on
   other media and is exact by construction:

   - a regular item's committed row is
       initial + own cumulative sync counter + Σ applied remote counters
     (each counter moves in the same atomic event as its commit);
   - a non-regular item's committed row is
       initial + Σ deltas of protocol-log entries with outcome Commit
     (the outcome record and the local apply are one atomic event) —
     trustworthy only while the protocol log itself lost nothing; under
     amnesia those items are quarantined and repaired remotely instead.

   Rows whose WAL state survived recompute to their current value, so
   running this over the whole interest set is idempotent. Assumes
   autonomous mode: the centralized baseline's write path bypasses the
   sync counters, so its base has no local reconstruction story. *)
let rebuild_lost_rows t ~trust_txn_log =
  if Database.table_opt t.db stock_table = None then
    ignore (Database.create_table t.db ~name:stock_table stock_schema);
  if (config t).Config.record_history && Database.table_opt t.db history_table = None
  then ignore (Database.create_table t.db ~name:history_table history_schema);
  let committed_by_item =
    lazy
      (let tbl = Hashtbl.create 16 in
       List.iter
         (fun (e : Txn_log.entry) ->
           if e.Txn_log.outcome = Some Two_phase.Commit then
             Hashtbl.replace tbl e.Txn_log.item
               (e.Txn_log.delta
               + Option.value ~default:0 (Hashtbl.find_opt tbl e.Txn_log.item)))
         (Txn_log.entries t.txn_log);
       tbl)
  in
  let txn = Database.begin_txn t.db in
  List.iter
    (fun product ->
      let item = product.Product.name in
      if interested_in t ~item then begin
        let regular = Product.is_regular product in
        let expect =
          if regular then begin
            let own =
              match Hashtbl.find_opt t.sync_out item with Some s -> s.cum | None -> 0
            in
            Hashtbl.fold
              (fun (_, i) (_, cum) acc -> if String.equal i item then acc + cum else acc)
              t.applied_sync
              (product.Product.initial_amount + own)
          end
          else if trust_txn_log then
            product.Product.initial_amount
            + Option.value ~default:0
                (Hashtbl.find_opt (Lazy.force committed_by_item) item)
          else begin
            (* untrusted both ways: the item is quarantined and will be
               repaired remotely; any placeholder works, the surviving
               value least surprises *)
            match amount_of t ~item with
            | Some v -> v
            | None -> product.Product.initial_amount
          end
        in
        match amount_of t ~item with
        | Some v when v = expect -> ()
        | Some _ -> (
            match
              Database.set_col txn ~table:stock_table ~key:item ~col:"amount"
                (Value.Int expect)
            with
            | Ok () -> ()
            | Error e -> failwith ("Site.recover rebuild: " ^ e))
        | None -> (
            match
              Database.insert txn ~table:stock_table ~key:item
                [| Value.Int expect; Value.Bool regular |]
            with
            | Ok () -> ()
            | Error e -> failwith ("Site.recover rebuild: " ^ e))
      end)
    (config t).Config.products;
  Database.commit txn

(* Protocol-log data loss taints every item whose correctness depends on
   that log: the non-regular interest set. A lost in-doubt entry means a
   decided Commit could arrive that this site no longer knows how to
   apply, so the rows cannot be trusted even when the WAL survived. *)
let quarantine_non_regular t =
  List.iter
    (fun product ->
      let item = product.Product.name in
      if (not (Product.is_regular product)) && interested_in t ~item then
        Hashtbl.replace t.quarantined item ())
    (config t).Config.products;
  if Hashtbl.length t.quarantined > 0 then
    trace t ~level:Trace.Warn ~category:"storage"
      "%a quarantined %d items after protocol-log loss" Address.pp t.addr
      (Hashtbl.length t.quarantined)

(* Remote repair: fetch a committed-state snapshot of each quarantined
   item from a donor — the item's base first, then the other subscribers
   in rotation — install it, then watch the donor's in-flight 2PC
   transactions on the item resolve (applying each commit exactly once)
   before lifting the quarantine. New 2PC on a quarantined item cannot
   commit meanwhile (this site votes Refuse), and every pre-crash
   prepare has landed before the first snapshot (repairs start after the
   longest 2PC timeout), so the snapshot plus its pending list is a
   complete account of the item. *)
let max_repair_attempts = 64

let finish_repair t ~item =
  if Hashtbl.mem t.quarantined item then begin
    Hashtbl.remove t.quarantined item;
    t.metrics.Update.Metrics.repairs <- t.metrics.Update.Metrics.repairs + 1;
    trace t ~category:"storage" "%a repaired %s (quarantine lifted)" Address.pp t.addr
      item;
    if tracing t then
      span_instant t ~category:"storage" "storage.repair" ~fields:[ ("item", item) ]
  end

let repair_apply_commit t ~item ~delta =
  let txn = Database.begin_txn t.db in
  match Database.add_int txn ~table:stock_table ~key:item ~col:"amount" delta with
  | Ok _ ->
      Database.commit txn;
      record_history t ~item ~delta ~path:"repair"
  | Error e ->
      Database.abort txn;
      failwith ("Site.repair apply: " ^ e)

let rec watch_pending t ~item ~txid ~coordinator ~donor ~delta ~via_donor ~attempt ~k =
  if attempt >= max_repair_attempts then
    trace t ~level:Trace.Warn ~category:"storage"
      "%a repair of %s stuck on tx%d; stays quarantined" Address.pp t.addr item txid
  else if (not (is_down t)) && Hashtbl.mem t.quarantined item then begin
    let again via_donor =
      ignore
        (Engine.schedule (engine t) ~delay:(config t).Config.repair_interval
           (fenced t (fun () ->
                watch_pending t ~item ~txid ~coordinator ~donor ~delta ~via_donor
                  ~attempt:(attempt + 1) ~k)))
    in
    if via_donor then
      (* the coordinator lost its record of the txid; the donor is a
         surviving cohort member and will eventually hold — or
         adjudicate — the outcome *)
      Rpc.call t.shared.rpc ~src:t.addr ~dst:donor
        ~timeout:(config t).Config.rpc_timeout
        (Protocol.Peer_decision_query { txid })
        (fenced t (fun response ->
             match response with
             | Ok (Protocol.Peer_decision_status { status = Protocol.Peer_decided d; _ })
               ->
                 if d = Two_phase.Commit then repair_apply_commit t ~item ~delta;
                 k ()
             | Ok
                 (Protocol.Peer_decision_status
                   { status = Protocol.Peer_will_refuse; _ }) ->
                 k ()
             | Ok _ | Error _ -> again true))
    else
      Rpc.call t.shared.rpc ~src:t.addr ~dst:coordinator
        ~timeout:(config t).Config.rpc_timeout
        (Protocol.Query_decision { txid })
        (fenced t (fun response ->
             match response with
             | Ok (Protocol.Decision_status { status = Protocol.Decided d; _ }) ->
                 if d = Two_phase.Commit then repair_apply_commit t ~item ~delta;
                 k ()
             | Ok (Protocol.Decision_status { status = Protocol.Unknown_txn; _ }) -> k ()
             | Ok (Protocol.Decision_status { status = Protocol.No_record; _ }) ->
                 again true
             | Ok _ | Error _ -> again false))
  end

let rec repair_item t ~item ~attempt =
  if is_down t || not (Hashtbl.mem t.quarantined item) then ()
  else if attempt >= max_repair_attempts then
    trace t ~level:Trace.Warn ~category:"storage"
      "%a repair of %s gave up after %d attempts; stays quarantined" Address.pp t.addr
      item attempt
  else begin
    let donors =
      let b = base_addr_for t ~item in
      let others = List.filter (fun a -> not (Address.equal a b)) (peers_for t ~item) in
      if Address.equal b t.addr then others else b :: others
    in
    match donors with
    | [] ->
        trace t ~level:Trace.Warn ~category:"storage"
          "%a has no donor for %s (sole subscriber); stays quarantined" Address.pp t.addr
          item
    | _ ->
        let donor = List.nth donors (attempt mod List.length donors) in
        let retry () =
          ignore
            (Engine.schedule (engine t) ~delay:(config t).Config.repair_interval
               (fenced t (fun () -> repair_item t ~item ~attempt:(attempt + 1))))
        in
        let sp = span_start t ~category:"storage" "storage.repair_fetch" in
        span_field t sp "item" item;
        span_field t sp "donor" (Address.to_string donor);
        Rpc.call t.shared.rpc ~src:t.addr ~dst:donor
          ~timeout:(config t).Config.rpc_timeout ~span:sp
          (Protocol.Join_request { wanted = Some [ item ] })
          (fenced t (fun response ->
               match response with
               | Ok
                   (Protocol.Join_snapshot { rows; sync_state = _; pending; epochs }
                   as resp)
                 -> (
                   t.metrics.Update.Metrics.repair_bytes <-
                     t.metrics.Update.Metrics.repair_bytes
                     + Protocol.wire_size_response resp;
                   span_end t sp;
                   match rows with
                   | [ (_, amount, _) ] ->
                       let txn = Database.begin_txn t.db in
                       (match
                          Database.set_col txn ~table:stock_table ~key:item
                            ~col:"amount" (Value.Int amount)
                        with
                       | Ok () -> Database.commit txn
                       | Error e ->
                           Database.abort txn;
                           failwith ("Site.repair install: " ^ e));
                       (match (Hashtbl.find_opt t.epochs item, epochs) with
                       | Some st, (_, donor_applied) :: _ ->
                           (* installed rows fold every donor seal through
                              [donor_applied]: floor the log there, and — after
                              amnesia, where promises were lost with the log —
                              fence this acceptor out of the next epoch so its
                              forgotten promise cannot be betrayed *)
                           if donor_applied > 0 then
                             Txn_log.record_epoch_floor t.txn_log ~item
                               ~epoch:donor_applied ~at:(now t);
                           st.ei_applied <- Stdlib.max st.ei_applied donor_applied;
                           if t.amnesia then
                             st.ei_fence <- Stdlib.max st.ei_fence (donor_applied + 1);
                           Hashtbl.reset st.ei_stash
                       | _ -> ());
                       let watches =
                         List.filter
                           (fun (_, _, pitem, _) -> String.equal pitem item)
                           pending
                       in
                       if watches = [] then finish_repair t ~item
                       else begin
                         let outstanding = ref (List.length watches) in
                         List.iter
                           (fun (txid, coordinator, _, delta) ->
                             watch_pending t ~item ~txid
                               ~coordinator:(Address.of_int coordinator) ~donor ~delta
                               ~via_donor:false ~attempt:0 ~k:(fun () ->
                                 decr outstanding;
                                 if !outstanding = 0 then finish_repair t ~item))
                           watches
                       end
                   | _ -> retry ())
               | Ok (Protocol.Bad_request _) ->
                   (* the donor's own copy is quarantined: rotate *)
                   span_warn t sp;
                   span_end t sp;
                   retry ()
               | Ok _ | Error _ ->
                   span_warn t sp;
                   span_end t sp;
                   retry ()))
  end

let schedule_repairs t =
  if Hashtbl.length t.quarantined > 0 && (config t).Config.mode = Config.Autonomous
  then begin
    (* Wait out the longest 2PC round first: prepares sent before the
       crash run without retries, so by then the donor holds every
       pre-crash transaction either in its committed row or in its
       pending list — nothing slips between snapshot and watches. *)
    let cfg = config t in
    let delay =
      Time.of_ms
        (Float.max
           (Time.to_ms cfg.Config.prepare_timeout)
           (Time.to_ms cfg.Config.ack_timeout))
    in
    Hashtbl.iter
      (fun item () ->
        ignore
          (Engine.schedule (engine t) ~delay
             (fenced t (fun () -> repair_item t ~item ~attempt:0))))
      t.quarantined
  end

let recover t =
  (* Restart: committed state only, from the write-ahead log — read back
     through the faultable disk when faults were armed. In-flight
     participant transactions, locks, holds and timers die with the
     process; bump the epoch again so even closures created while down
     (there should be none, but belt and braces) cannot fire. *)
  t.epoch <- t.epoch + 1;
  let wal_report = Fault_sink.take_recovery t.wal_sink in
  let txn_report = Fault_sink.take_recovery t.txn_sink in
  let wal_loss = ref false in
  (match wal_report with
  | None -> t.db <- Database.recover ~name:(Database.name t.db) (Database.wal t.db)
  | Some report ->
      note_storage_damage t ~label:"wal" report;
      wal_loss := Segmented.data_loss report;
      let wal =
        match Wal.of_string (String.concat "\n" report.Segmented.payloads) with
        | Ok wal -> wal
        | Error c ->
            (* a recovered prefix re-parses by construction; only a CRC
               collision hiding damage can land here *)
            trace t ~level:Trace.Warn ~category:"storage" "%a wal prefix unreadable: %a"
              Address.pp t.addr Corruption.pp c;
            wal_loss := true;
            Wal.create ()
      in
      t.db <- Database.recover ~name:(Database.name t.db) wal);
  (match txn_report with
  | None -> ()
  | Some report ->
      note_storage_damage t ~label:"txn-log" report;
      let lost = ref (Segmented.data_loss report) in
      let log =
        match Txn_log.of_string (String.concat "\n" report.Segmented.payloads) with
        | Ok log -> log
        | Error c ->
            trace t ~level:Trace.Warn ~category:"storage"
              "%a txn-log prefix unreadable: %a" Address.pp t.addr Corruption.pp c;
            lost := true;
            Txn_log.create ()
      in
      t.txn_log <- log;
      if !lost then begin
        (* Synced protocol records are gone: "no entry" stops implying
           "never happened", forever — later recoveries cannot un-lose
           them. Every non-regular interest item is suspect. *)
        t.amnesia <- true;
        quarantine_non_regular t
      end);
  if !wal_loss then begin
    (* Under amnesia — even from an *earlier* incarnation — the protocol
       log no longer bounds the committed non-regular deltas, so a lost
       WAL row cannot be reconstructed locally: quarantine and repair
       remotely instead. Without amnesia the rebuild is exact. *)
    if t.amnesia then quarantine_non_regular t;
    rebuild_lost_rows t ~trust_txn_log:(not t.amnesia)
  end;
  (* Resume the audit sequence after the recovered rows to keep keys
     unique (history rows are never deleted). *)
  (match Database.table_opt t.db history_table with
  | Some tbl -> t.history_seq <- Table.size tbl
  | None -> ());
  Hashtbl.reset t.participant_txns;
  Hashtbl.reset t.coordinators;
  Two_phase.Participant.reset t.participant;
  t.locks <- Lock_manager.create ~engine:(engine t) ~default_timeout:(config t).Config.lock_timeout ();
  (* Transient per-incarnation state: holds taken by in-flight updates go
     back to available (their owners are gone), background refills restart
     from scratch, and the debounced flush timer is re-armed if committed
     deltas are still waiting to propagate. *)
  Av_table.release_all t.av;
  Hashtbl.reset t.prefetch_in_flight;
  t.sync_flush_scheduled <- false;
  Network.set_down (network t) t.addr false;
  (* Re-install in-doubt 2PC state from the durable protocol log — after
     the network is back up, so the replay can speak to the cohort. *)
  replay_protocol_log t;
  (* Amnesia txid floor: surviving entries no longer bound every txid we
     ever issued, so reserve a fresh range per incarnation instead of
     risking reuse of a lost one. *)
  if t.amnesia then t.next_txn_seq <- max t.next_txn_seq (t.epoch * 1000);
  (* Epoch class: re-derive the applied prefix and re-buffer own unsealed
     intents from the durable log, then restart the pump. *)
  rebuild_epoch_state t;
  schedule_sync_flush t;
  (* Quarantined items — fresh this recovery or left by an interrupted
     repair — go back under repair. *)
  schedule_repairs t;
  if tracing t then
    span_instant t ~category:"fault" "fault.recover"
      ~fields:[ ("epoch", string_of_int t.epoch) ];
  trace t ~category:"fault" "%a recovered (WAL + protocol log replayed)" Address.pp t.addr

(* --- construction --- *)

let create shared ~addr ~av_init =
  let config = shared.config in
  let topo = shared.topology in
  let my_index = Address.to_int addr in
  let db = Database.create ~name:(Address.to_string addr) () in
  ignore (Database.create_table db ~name:stock_table stock_schema);
  if config.Config.record_history then
    ignore (Database.create_table db ~name:history_table history_schema);
  let txn = Database.begin_txn db in
  (* Partial replication starts here: only the products this site
     subscribes to get a local row — everything else is neither stored nor
     tracked, so the site's live state is bounded by its interest set. *)
  List.iter
    (fun product ->
      if Topology.interested topo ~site:my_index ~item:product.Product.name then begin
        let row =
          [|
            Value.Int product.Product.initial_amount;
            Value.Bool (Product.is_regular product);
          |]
        in
        match Database.insert txn ~table:stock_table ~key:product.Product.name row with
        | Ok () -> ()
        | Error e -> failwith ("Site.create: " ^ e)
      end)
    config.Config.products;
  Database.commit txn;
  let av = Av_table.create () in
  if config.Config.mode = Config.Autonomous then
    List.iter (fun (item, volume) -> Av_table.define av ~item ~volume) av_init;
  if shared.n_members < 1 then invalid_arg "Site.create: empty cluster";
  let base_addr = Address.of_int 0 in
  let epochs = Hashtbl.create 4 in
  List.iter
    (fun product ->
      let item = product.Product.name in
      if Product.is_epoch product && Topology.interested topo ~site:my_index ~item
      then
        Hashtbl.replace epochs item
          {
            ei_item = item;
            ei_subs = [];
            ei_subs_version = -1;
            ei_applied = 0;
            ei_buffer = Hashtbl.create 8;
            ei_sealed = Hashtbl.create 16;
            ei_stash = Hashtbl.create 4;
            ei_waiters = Hashtbl.create 8;
            ei_acked = Hashtbl.create 4;
            ei_attempts = 0;
            ei_pump = false;
            ei_busy = false;
            ei_fence = 0;
          })
    config.Config.products;
  let t =
    {
      shared;
      addr;
      role = (if Address.equal addr base_addr then Maker else Retailer);
      base_addr;
      db;
      av;
      view = Peer_view.create ();
      sel_state = Strategy.create_state ();
      rng = Rng.split (Engine.rng shared.engine);
      locks =
        Lock_manager.create ~engine:shared.engine
          ~default_timeout:config.Config.lock_timeout ();
      participant = Two_phase.Participant.create ();
      participant_txns = Hashtbl.create 16;
      coordinators = Hashtbl.create 16;
      txn_log = Txn_log.create ();
      wal_sink = Fault_sink.create ();
      txn_sink = Fault_sink.create ();
      quarantined = Hashtbl.create 4;
      amnesia = false;
      metrics = Update.Metrics.create ();
      sync_out = Hashtbl.create 16;
      sync_seq = 0;
      sync_flushed_seq = 0;
      conveyed_sync = Hashtbl.create 8;
      applied_sync = Hashtbl.create 64;
      applied_high = Hashtbl.create 8;
      last_sync_apply = None;
      sync_rr = 0;
      sync_rot_left = 0;
      prefetch_in_flight = Hashtbl.create 16;
      peer_cache = Hashtbl.create 16;
      history_seq = 0;
      sync_flush_scheduled = false;
      next_txn_seq = 0;
      epoch = 0;
      epochs;
      inflight = Hashtbl.create 8;
      next_op_seq = 0;
    }
  in
  Rpc.serve shared.rpc addr
    ~handler:(fun ~src ~span request ~reply ->
      match request with
      | Protocol.Av_request { item; amount; requester_available; sync } ->
          handle_av_request t ~src ~span ~item ~amount ~requester_available ~sync ~reply
      | Protocol.Central_update { item; delta } -> handle_central_update t ~item ~delta ~reply
      | Protocol.Prepare { txid; coordinator; cohort; item; delta } ->
          handle_prepare t ~span ~txid ~coordinator ~cohort ~item ~delta ~reply
      | Protocol.Decision { txid; decision } -> handle_decision t ~txid ~decision ~reply
      | Protocol.Read_request { item } ->
          let amount =
            if Hashtbl.mem t.quarantined item then
              (* quarantined replicas answer as if they held nothing:
                 availability lost, consistency kept *)
              None
            else if Mutation.enabled Mutation.Stale_reads then
              (* Mutation: serve authoritative reads from a stale snapshot
                 (the initial catalogue) instead of the live replica. *)
              List.find_map
                (fun p ->
                  if String.equal p.Product.name item then
                    Some p.Product.initial_amount
                  else None)
                config.Config.products
            else amount_of t ~item
          in
          reply (Protocol.Read_value { amount })
      | Protocol.Query_decision { txid } -> handle_query_decision t ~txid ~reply
      | Protocol.Peer_decision_query { txid } -> handle_peer_decision_query t ~txid ~reply
      | Protocol.Join_request { wanted } -> handle_join t ~wanted ~reply
      | Protocol.Epoch_intent { item; txid; origin; delta } ->
          handle_epoch_intent t ~item ~txid ~origin ~delta ~reply
      | Protocol.Epoch_propose { item; epoch; ballot; seal } ->
          handle_epoch_propose t ~src ~item ~epoch ~ballot ~seal ~reply
      | Protocol.Epoch_commit { item; epoch; seal } ->
          handle_epoch_commit t ~src ~item ~epoch ~seal ~reply
      | Protocol.Epoch_pull { item; from_epoch } ->
          handle_epoch_pull t ~item ~from_epoch ~reply
      | Protocol.Epoch_collect { item; epoch; ballot } ->
          handle_epoch_collect t ~item ~epoch ~ballot ~reply)
    ~notice:(fun ~src notice ->
      match notice with
      | Protocol.Sync_counters { counters; av_info; ack } ->
          handle_sync t ~src ~counters ~av_info ~ack)
    ();
  t
