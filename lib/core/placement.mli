(** Topology-aware assignment of sites to execution domains.

    The parallel engine pays for every cross-shard message, and nearly
    all traffic is confined to an item's subscriber set (sync, AV
    circulation, 2PC). This module splits the sites of a resolved
    {!Topology.t} into [n_domains] balanced shards while greedily
    co-locating each item's subscribers: a site lands on the domain that
    already holds most of its co-subscribers, subject to a per-domain
    cap of the balanced share.

    Deterministic: a pure function of (topology, n_domains) — no RNG —
    so a seeded configuration shards identically on every run. *)

type t

val create : Topology.t -> n_domains:int -> items:string list -> t
(** [n_domains] is clamped to the site count. Raises [Invalid_argument]
    when [n_domains < 1]. *)

val n_domains : t -> int
(** The effective domain count (after clamping). *)

val domain_of : t -> int -> int
(** Owning domain of a site index. *)

val sites_of : t -> int -> int array
(** Ascending site indices owned by a domain. The arrays partition
    [0 .. n_sites - 1]. *)

val cross_items : t -> int
(** Items whose subscriber set spans more than one domain — each is a
    source of cross-shard traffic. 0 means the shards never exchange
    messages through the item protocols. *)

val pp : Format.formatter -> t -> unit
