open Avdb_net
open Avdb_txn

type decision_status =
  | Decided of Two_phase.decision
  | Still_pending
  | Unknown_txn
  | No_record
      (** The asked coordinator lost (part of) its protocol log to a storage
          fault: it has no record of the txid and, unlike [Unknown_txn],
          cannot presume abort — the decision may have existed and been
          lost. The asker must adjudicate with the full cohort instead. *)

type peer_status =
  | Peer_decided of Two_phase.decision
  | Peer_prepared
  | Peer_will_refuse

type central_status = Central_applied | Central_insufficient | Central_unknown_item

type request =
  | Av_request of {
      item : string;
      amount : int;
      requester_available : int;
      sync : (string * int * int) list;
    }
  | Central_update of { item : string; delta : int }
  | Prepare of {
      txid : int;
      coordinator : Address.t;
      cohort : Address.t list;
      item : string;
      delta : int;
    }
  | Decision of { txid : int; decision : Two_phase.decision }
  | Read_request of { item : string }
  | Query_decision of { txid : int }
  | Peer_decision_query of { txid : int }
  | Join_request of { wanted : string list option }
      (** [None]: the whole catalogue (full replication); [Some items]:
          only the joiner's interest set — a partially-replicating server
          answers with just the rows and sync counters it holds for them *)
  | Epoch_intent of { item : string; txid : int; origin : Address.t; delta : int }
  | Epoch_propose of {
      item : string;
      epoch : int;
      ballot : int;
      seal : Txn_log.intent list;
    }
  | Epoch_commit of { item : string; epoch : int; seal : Txn_log.intent list }
  | Epoch_pull of { item : string; from_epoch : int }
  | Epoch_collect of { item : string; epoch : int; ballot : int }

type response =
  | Av_grant of {
      granted : int;
      donor_available : int;
      av_levels : (string * int) list;
      sync : (string * int * int) list;
    }
  | Central_ack of { status : central_status; new_amount : int }
  | Vote of { txid : int; vote : Two_phase.vote }
  | Decision_ack of { txid : int }
  | Read_value of { amount : int option }
  | Decision_status of { txid : int; status : decision_status }
  | Peer_decision_status of { txid : int; status : peer_status }
  | Join_snapshot of {
      rows : (string * int * bool) list;
          (** committed state only: tentative 2PC deltas are subtracted *)
      sync_state : (int * string * int * int) list;
      pending : (int * int * string * int) list;
          (** in-flight 2PC txns touching the requested items, as
              (txid, coordinator, item, delta) — a repairing site must
              watch these resolve before trusting its snapshot *)
      epochs : (string * int) list;
          (** per requested epoch-class item: the donor's applied epoch at
              snapshot time — the joiner's floor, so later seals are not
              double-applied onto the snapshot *)
    }
  | Epoch_intent_ack of { txid : int; sealed : bool }
  | Epoch_vote of { item : string; epoch : int; accepted : bool }
  | Epoch_commit_ack of { item : string; epoch : int; applied_epoch : int }
  | Epoch_seals of { item : string; seals : (int * Txn_log.intent list) list }
  | Epoch_state of {
      item : string;
      epoch : int;
      promised : int;
      sealed : Txn_log.intent list option;
      accepted : (int * Txn_log.intent list) option;
      applied_epoch : int;
    }
  | Bad_request of string

type notice =
  | Sync_counters of {
      counters : (string * int * int) list;
      av_info : (string * int) list;
      ack : (int * int) list;
    }

(* Rough wire sizes: a fixed header plus per-field costs; strings count
   their bytes, ints 8. Only relative magnitudes matter for the bandwidth
   model, not exact encodings. *)
let header = 16

(* A (item, version, cum) sync triple: the item's bytes plus two ints. *)
let sync_size acc (item, _, _) = acc + String.length item + 16
let level_size acc (item, _) = acc + String.length item + 8

(* An epoch-seal intent: txid + origin + delta. *)
let seal_size seal = 24 * List.length seal

let wire_size_request = function
  | Av_request { item; sync; _ } ->
      header + String.length item + 16 + List.fold_left sync_size 0 sync
  | Central_update { item; _ } -> header + String.length item + 8
  | Prepare { item; cohort; _ } -> header + String.length item + 24 + (8 * List.length cohort)
  | Decision _ -> header + 9
  | Read_request { item } -> header + String.length item
  | Query_decision _ -> header + 8
  | Peer_decision_query _ -> header + 8
  | Join_request { wanted } ->
      header
      + (match wanted with
        | None -> 0
        | Some items -> List.fold_left (fun acc i -> acc + String.length i) 0 items)
  | Epoch_intent { item; _ } -> header + String.length item + 24
  | Epoch_propose { item; seal; _ } -> header + String.length item + 16 + seal_size seal
  | Epoch_commit { item; seal; _ } -> header + String.length item + 8 + seal_size seal
  | Epoch_pull { item; _ } -> header + String.length item + 8
  | Epoch_collect { item; _ } -> header + String.length item + 16

let wire_size_response = function
  | Av_grant { av_levels; sync; _ } ->
      header + 16
      + List.fold_left level_size 0 av_levels
      + List.fold_left sync_size 0 sync
  | Central_ack _ -> header + 9
  | Vote _ -> header + 9
  | Decision_ack _ -> header + 8
  | Read_value _ -> header + 9
  | Decision_status _ -> header + 9
  | Peer_decision_status _ -> header + 9
  | Join_snapshot { rows; sync_state; pending; epochs } ->
      header
      + List.fold_left (fun acc (item, _, _) -> acc + String.length item + 9) 0 rows
      + (List.length sync_state * 28)
      + List.fold_left (fun acc (_, _, item, _) -> acc + String.length item + 24) 0 pending
      + List.fold_left level_size 0 epochs
  | Epoch_intent_ack _ -> header + 9
  | Epoch_vote { item; _ } -> header + String.length item + 9
  | Epoch_commit_ack { item; _ } -> header + String.length item + 16
  | Epoch_seals { item; seals } ->
      header + String.length item
      + List.fold_left (fun acc (_, seal) -> acc + 8 + seal_size seal) 0 seals
  | Epoch_state { item; sealed; accepted; _ } ->
      header + String.length item + 24
      + (match sealed with None -> 0 | Some s -> seal_size s)
      + (match accepted with None -> 0 | Some (_, s) -> 8 + seal_size s)
  | Bad_request msg -> header + String.length msg

let wire_size_notice = function
  | Sync_counters { counters; av_info; ack } ->
      header
      + List.fold_left sync_size 0 counters
      + List.fold_left level_size 0 av_info
      + (16 * List.length ack)

(* Span names for the RPC tracer: constructor only, no payload. *)
let request_label = function
  | Av_request _ -> "av_request"
  | Central_update _ -> "central_update"
  | Prepare _ -> "prepare"
  | Decision _ -> "decision"
  | Read_request _ -> "read"
  | Query_decision _ -> "query_decision"
  | Peer_decision_query _ -> "peer_decision_query"
  | Join_request _ -> "join"
  | Epoch_intent _ -> "epoch_intent"
  | Epoch_propose _ -> "epoch_propose"
  | Epoch_commit _ -> "epoch_commit"
  | Epoch_pull _ -> "epoch_pull"
  | Epoch_collect _ -> "epoch_collect"

let pp_request ppf = function
  | Av_request { item; amount; requester_available; sync } ->
      Format.fprintf ppf "av_request(%s, %d, have=%d, sync=%d)" item amount
        requester_available (List.length sync)
  | Central_update { item; delta } -> Format.fprintf ppf "central_update(%s, %+d)" item delta
  | Prepare { txid; coordinator; cohort; item; delta } ->
      Format.fprintf ppf "prepare(tx%d, coord=%a, cohort=%d, %s, %+d)" txid Address.pp
        coordinator (List.length cohort) item delta
  | Decision { txid; decision } ->
      Format.fprintf ppf "decision(tx%d, %a)" txid Two_phase.pp_decision decision
  | Read_request { item } -> Format.fprintf ppf "read_request(%s)" item
  | Query_decision { txid } -> Format.fprintf ppf "query_decision(tx%d)" txid
  | Peer_decision_query { txid } -> Format.fprintf ppf "peer_decision_query(tx%d)" txid
  | Join_request { wanted } ->
      Format.fprintf ppf "join_request(%s)"
        (match wanted with
        | None -> "all"
        | Some items -> string_of_int (List.length items) ^ " items")
  | Epoch_intent { item; txid; origin; delta } ->
      Format.fprintf ppf "epoch_intent(%s, tx%d, from=%a, %+d)" item txid Address.pp
        origin delta
  | Epoch_propose { item; epoch; ballot; seal } ->
      Format.fprintf ppf "epoch_propose(%s, e%d, b%d, %d intents)" item epoch ballot
        (List.length seal)
  | Epoch_commit { item; epoch; seal } ->
      Format.fprintf ppf "epoch_commit(%s, e%d, %d intents)" item epoch
        (List.length seal)
  | Epoch_pull { item; from_epoch } ->
      Format.fprintf ppf "epoch_pull(%s, from e%d)" item from_epoch
  | Epoch_collect { item; epoch; ballot } ->
      Format.fprintf ppf "epoch_collect(%s, e%d, b%d)" item epoch ballot

let pp_response ppf = function
  | Av_grant { granted; donor_available; av_levels; sync } ->
      Format.fprintf ppf "av_grant(%d, donor_has=%d, levels=%d, sync=%d)" granted
        donor_available (List.length av_levels) (List.length sync)
  | Central_ack { status; new_amount } ->
      Format.fprintf ppf "central_ack(%s, %d)"
        (match status with
        | Central_applied -> "applied"
        | Central_insufficient -> "insufficient"
        | Central_unknown_item -> "unknown-item")
        new_amount
  | Vote { txid; vote } -> Format.fprintf ppf "vote(tx%d, %a)" txid Two_phase.pp_vote vote
  | Decision_ack { txid } -> Format.fprintf ppf "decision_ack(tx%d)" txid
  | Read_value { amount } ->
      Format.fprintf ppf "read_value(%s)"
        (match amount with Some n -> string_of_int n | None -> "none")
  | Join_snapshot { rows; sync_state; pending; epochs } ->
      Format.fprintf ppf "join_snapshot(%d rows, %d counters, %d pending, %d epochs)"
        (List.length rows) (List.length sync_state) (List.length pending)
        (List.length epochs)
  | Decision_status { txid; status } ->
      Format.fprintf ppf "decision_status(tx%d, %s)" txid
        (match status with
        | Decided d -> Format.asprintf "%a" Two_phase.pp_decision d
        | Still_pending -> "pending"
        | Unknown_txn -> "unknown"
        | No_record -> "no-record")
  | Peer_decision_status { txid; status } ->
      Format.fprintf ppf "peer_decision_status(tx%d, %s)" txid
        (match status with
        | Peer_decided d -> Format.asprintf "%a" Two_phase.pp_decision d
        | Peer_prepared -> "prepared"
        | Peer_will_refuse -> "will-refuse")
  | Epoch_intent_ack { txid; sealed } ->
      Format.fprintf ppf "epoch_intent_ack(tx%d, %s)" txid
        (if sealed then "sealed" else "buffered")
  | Epoch_vote { item; epoch; accepted } ->
      Format.fprintf ppf "epoch_vote(%s, e%d, %s)" item epoch
        (if accepted then "accept" else "reject")
  | Epoch_commit_ack { item; epoch; applied_epoch } ->
      Format.fprintf ppf "epoch_commit_ack(%s, e%d, applied=e%d)" item epoch
        applied_epoch
  | Epoch_seals { item; seals } ->
      Format.fprintf ppf "epoch_seals(%s, %d seals)" item (List.length seals)
  | Epoch_state { item; epoch; promised; sealed; accepted; applied_epoch } ->
      Format.fprintf ppf "epoch_state(%s, e%d, promised=b%d, %s, applied=e%d)" item
        epoch promised
        (match (sealed, accepted) with
        | Some _, _ -> "sealed"
        | None, Some (b, _) -> Printf.sprintf "accepted@b%d" b
        | None, None -> "empty")
        applied_epoch
  | Bad_request msg -> Format.fprintf ppf "bad_request(%s)" msg

let pp_notice ppf = function
  | Sync_counters { counters; av_info = _; ack } ->
      Format.fprintf ppf "sync_counters(%d items, %d acks)" (List.length counters)
        (List.length ack)
