(* The parallel (multi-domain) cluster: the same simulated system as
   {!Cluster}, with the sites sharded across OCaml domains by
   {!Placement} and executed by {!Avdb_sim.Parallel} in conservative
   barrier-stepped windows.

   Each shard is a self-contained single-domain world — engine, RPC
   stack, trace, tracer, metrics registry — so no hot-path state is ever
   shared between domains. The only cross-domain traffic is the
   lock-free mailbox of routed network messages: a send whose
   destination lives on another shard computes its full delivery instant
   sender-side (latency draw, bandwidth, loss/duplication/reordering,
   FIFO clamp — all against the sender shard's link state and RNG) and
   pushes the envelope into the owner's inbox; the owner schedules it
   while draining at the next barrier. The lookahead window equals the
   latency lower bound, so a routed message can never land in the
   receiver's past.

   Determinism: shard seeds, the window grid and the rank-ordered
   mailbox drain are all pure functions of (config, topology), so a
   same-seed run produces byte-identical state and exports at any domain
   interleaving. With the default constant latency and no fault
   injection it also reproduces the sequential cluster's outcomes
   exactly: the per-site RNG streams differ, but no default-strategy
   code path consumes them in a behaviour-affecting way. *)

open Avdb_sim
open Avdb_net
module Obs_registry = Avdb_obs.Registry
module Tracer = Avdb_obs.Tracer

type envelope = (Protocol.request, Protocol.response, Protocol.notice) Rpc.envelope

(* A routed message at rest in a mailbox: delivery instant and addresses
   resolved sender-side, re-checked (dst down, partition) at delivery. *)
type xmsg = { x_at : Time.t; x_src : Address.t; x_dst : Address.t; x_env : envelope }

type shard = {
  rank : int;
  engine : Engine.t;
  rpc : (Protocol.request, Protocol.response, Protocol.notice) Rpc.t;
  trace : Trace.t;
  tracer : Tracer.t;
  registry : Obs_registry.t;
  violations : Obs_registry.counter;
  inbox : xmsg Mailbox.t;
  mutable senders : xmsg Mailbox.sender array;
      (** [senders.(d)]: this shard's push handle into shard [d]'s inbox;
          only touched by the domain currently running this shard *)
  site_ixs : int array;
  mutable snapshots_armed : bool;
}

type t = {
  config : Config.t;
  topology : Topology.t;
  placement : Placement.t;
  shards : shard array;
  store : Site.t array;  (* by global site index *)
  window : Time.t;
  mutable next_probe : Time.t;
  mutable probes_run : int;
  mutable last_stats : Parallel.stats option;
}

(* Decorrelate the shard engines' RNG streams; shard 0 keeps the config
   seed so a single-domain Pcluster replays the sequential cluster. *)
let shard_seed config rank = config.Config.seed lxor (rank * 0x2545F4914F6CDD1D)

let create config =
  (match Config.validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Pcluster.create: " ^ e));
  let items = List.map (fun p -> p.Product.name) config.Config.products in
  let topology =
    Topology.create config.Config.topology ~n_sites:config.Config.n_sites ~items
  in
  let placement = Placement.create topology ~n_domains:config.Config.domains ~items in
  let n_domains = Placement.n_domains placement in
  let lb = Latency.lower_bound config.Config.latency in
  let window = if Time.compare lb Time.zero > 0 then lb else Time.of_ms 1. in
  let shards =
    Array.init n_domains (fun rank ->
        let engine = Engine.create ~seed:(shard_seed config rank) () in
        let tracer =
          Tracer.create ~enabled:config.Config.tracing
            ~sample_rate:config.Config.trace_sample ?slow:config.Config.trace_slow
            ~seed:config.Config.seed ~id_base:rank ~id_stride:n_domains ()
        in
        let rpc =
          Rpc.create ~engine ~latency:config.Config.latency
            ~drop_probability:config.Config.drop_probability
            ~duplicate_probability:config.Config.duplicate_probability
            ~reorder_probability:config.Config.reorder_probability
            ?bandwidth_bytes_per_sec:config.Config.bandwidth_bytes_per_sec
            ~default_timeout:config.Config.rpc_timeout
            ~request_size:Protocol.wire_size_request
            ~response_size:Protocol.wire_size_response
            ~notice_size:Protocol.wire_size_notice ~tracer
            ~request_label:Protocol.request_label ()
        in
        let registry = Obs_registry.create ~retention:config.Config.metrics_retention () in
        {
          rank;
          engine;
          rpc;
          trace = Trace.create ();
          tracer;
          registry;
          violations = Obs_registry.counter registry "invariant.violations";
          inbox = Mailbox.create ();
          senders = [||];
          site_ixs = Placement.sites_of placement rank;
          snapshots_armed = false;
        })
  in
  Array.iter
    (fun sh ->
      sh.senders <-
        Array.map (fun peer -> Mailbox.sender peer.inbox ~rank:sh.rank) shards)
    shards;
  (* Cross-shard routing: a send to a site owned elsewhere resolves to a
     push into the owner's inbox. *)
  Array.iter
    (fun sh ->
      Network.set_remote_route (Rpc.network sh.rpc) (fun dst ->
          let di = Address.to_int dst in
          if di < 0 || di >= config.Config.n_sites then None
          else
            let owner = Placement.domain_of placement di in
            if owner = sh.rank then None
            else
              Some
                (fun ~at ~src env ->
                  Mailbox.push sh.senders.(owner)
                    { x_at = at; x_src = src; x_dst = dst; x_env = env })))
    shards;
  (* Sites, in global index order (per shard this is ascending site
     order — each shard's creation only draws from its own engine). *)
  let store =
    Array.init config.Config.n_sites (fun site_index ->
        let sh = shards.(Placement.domain_of placement site_index) in
        let shared =
          {
            Site.engine = sh.engine;
            rpc = sh.rpc;
            config;
            topology;
            n_members = config.Config.n_sites;
            trace = sh.trace;
            tracer = sh.tracer;
          }
        in
        Site.create shared
          ~addr:(Address.of_int site_index)
          ~av_init:(Cluster.av_init_for config topology ~site_index))
  in
  let t =
    {
      config;
      topology;
      placement;
      shards;
      store;
      window;
      next_probe = Time.zero;
      probes_run = 0;
      last_stats = None;
    }
  in
  Array.iter
    (fun sh ->
      Site_metrics.register_aggregates ~registry:sh.registry ~tracer:sh.tracer
        ~iter_sites:(fun f -> Array.iter (fun i -> f store.(i)) sh.site_ixs);
      Array.iter
        (fun i ->
          Site_metrics.register_site ~registry:sh.registry ~engine:sh.engine ~config
            ~topology ~net_stats:(Rpc.stats sh.rpc)
            ~resolve:(fun peer ->
              (* snapshots are per-shard: never read across a domain *)
              if
                peer >= 0
                && peer < Array.length store
                && Placement.domain_of placement peer = sh.rank
              then Some store.(peer)
              else None)
            store.(i))
        sh.site_ixs)
    shards;
  t

let config t = t.config
let topology t = t.topology
let placement t = t.placement
let n_domains t = Array.length t.shards
let n_sites t = Array.length t.store
let window t = t.window
let sites t = Array.copy t.store

let site t i =
  if i < 0 || i >= Array.length t.store then invalid_arg "Pcluster.site: index out of range";
  t.store.(i)

let domain_of_site t i =
  if i < 0 || i >= Array.length t.store then
    invalid_arg "Pcluster.domain_of_site: index out of range";
  Placement.domain_of t.placement i

let shard_of_site t i = t.shards.(domain_of_site t i)

let now t = Engine.now t.shards.(0).engine

let rounds t = match t.last_stats with Some s -> s.Parallel.rounds | None -> 0

let subscribers t ~item = Topology.subscribers t.topology ~item
let interested t ~site ~item = Topology.interested t.topology ~site ~item
let base_site_for t ~item = t.store.(Topology.base_index t.topology ~item)

(* --- scheduling onto shard engines (only between runs, or for events
   armed before a run) --- *)

let schedule_at_site t ~site ~at f =
  ignore (Engine.schedule_at (shard_of_site t site).engine ~at f)

let schedule_all t ~at f =
  Array.iter
    (fun sh -> ignore (Engine.schedule_at sh.engine ~at (fun () -> f ~shard:sh.rank)))
    t.shards

(* --- fault injection: network knobs are sender-side state, so every
   shard's network mirrors them; the [_at] variants install the change
   at the same virtual instant on every shard, which the common window
   grid turns into an atomic cross-shard event. --- *)

let each_net t f = Array.iter (fun sh -> f (Rpc.network sh.rpc)) t.shards

let at_each_net t ~at f =
  Array.iter
    (fun sh -> ignore (Engine.schedule_at sh.engine ~at (fun () -> f (Rpc.network sh.rpc))))
    t.shards

let partition t i j =
  each_net t (fun n -> Network.partition n (Address.of_int i) (Address.of_int j))

let heal t i j = each_net t (fun n -> Network.heal n (Address.of_int i) (Address.of_int j))
let set_drop_probability t p = each_net t (fun n -> Network.set_drop_probability n p)

let set_duplicate_probability t p =
  each_net t (fun n -> Network.set_duplicate_probability n p)

let set_reorder_probability t p = each_net t (fun n -> Network.set_reorder_probability n p)

let partition_at t ~at i j =
  at_each_net t ~at (fun n -> Network.partition n (Address.of_int i) (Address.of_int j))

let heal_at t ~at i j =
  at_each_net t ~at (fun n -> Network.heal n (Address.of_int i) (Address.of_int j))

let set_drop_probability_at t ~at p =
  at_each_net t ~at (fun n -> Network.set_drop_probability n p)

let set_duplicate_probability_at t ~at p =
  at_each_net t ~at (fun n -> Network.set_duplicate_probability n p)

let set_reorder_probability_at t ~at p =
  at_each_net t ~at (fun n -> Network.set_reorder_probability n p)

(* --- observability --- *)

let engines t = Array.map (fun sh -> sh.engine) t.shards
let net_stats t = Array.map (fun sh -> Rpc.stats sh.rpc) t.shards
let traces t = Array.map (fun sh -> sh.trace) t.shards
let tracers t = Array.map (fun sh -> sh.tracer) t.shards
let registries t = Array.map (fun sh -> sh.registry) t.shards

let trace_events ?category ?min_level t =
  Trace.merged_events ?category ?min_level (Array.to_list (traces t))

let spans t = Tracer.merged_spans (Array.to_list (tracers t))
let metric_samples t = Obs_registry.merged_samples (Array.to_list (registries t))

let total_correspondences t =
  Array.fold_left (fun acc s -> acc + Stats.total_correspondences s) 0 (net_stats t)

(* A site's sends count on its own shard's stats and its receives on the
   delivering shard's, so per-site rows merge by summing across shards. *)
let per_site_correspondences t =
  let acc = Hashtbl.create 64 in
  Array.iter
    (fun stats ->
      List.iter
        (fun (a, s) ->
          let i = Address.to_int a in
          let prev = Option.value (Hashtbl.find_opt acc i) ~default:0 in
          Hashtbl.replace acc i (prev + s.Stats.correspondences))
        (Stats.sites stats))
    (net_stats t);
  Hashtbl.fold (fun i c rows -> (i, c) :: rows) acc [] |> List.sort compare

let live_words_per_site t =
  Array.to_list (Array.mapi (fun i s -> (i, Site.live_words s)) t.store)

(* --- invariant probes (barrier-only: they read across shards) --- *)

let iter_sites t f = Array.iter f t.store

let violation t name detail =
  let sh = t.shards.(0) in
  Obs_registry.inc sh.violations 1;
  Trace.record sh.trace ~at:(Engine.now sh.engine) ~level:Trace.Warn ~category:"invariant"
    detail;
  ignore
    (Tracer.instant sh.tracer ~at:(Engine.now sh.engine) ~status:Avdb_obs.Span.Warn
       ~fields:[ ("detail", detail) ]
       ~category:"invariant" name)

let run_probes t =
  t.probes_run <- t.probes_run + 1;
  let pending =
    Array.fold_left (fun acc sh -> acc + Rpc.pending_calls sh.rpc) 0 t.shards
  in
  if t.config.Config.mode = Config.Autonomous && pending = 0 then
    List.iter
      (fun product ->
        if Product.is_regular product then
          match
            System_checks.av_conservation ~topology:t.topology
              ~site:(fun i -> t.store.(i))
              ~item:product.Product.name
          with
          | Ok () -> ()
          | Error msg -> violation t "invariant.av_conservation" msg)
      t.config.Config.products;
  match System_checks.net_conservation (Array.to_list (net_stats t)) with
  | Ok () -> ()
  | Error msg -> violation t "invariant.net_conservation" msg

let snapshot_now t =
  run_probes t;
  Array.iter (fun sh -> Obs_registry.snapshot sh.registry ~at:(Engine.now sh.engine)) t.shards

(* Per-shard periodic registry snapshots, exactly like the sequential
   cluster's chain: self-parking at shard quiescence, re-armed by [run].
   Only the shard's own registry is sampled here — the cross-shard
   probes run at barriers instead (see [run]). *)
let arm_snapshots t sh =
  match t.config.Config.snapshot_interval with
  | None -> ()
  | Some interval ->
      if not sh.snapshots_armed then begin
        sh.snapshots_armed <- true;
        let rec tick () =
          Obs_registry.snapshot sh.registry ~at:(Engine.now sh.engine);
          if Engine.pending sh.engine > 0 then
            ignore (Engine.schedule sh.engine ~delay:interval tick)
          else sh.snapshots_armed <- false
        in
        ignore (Engine.schedule sh.engine ~delay:interval tick)
      end

let drain sh =
  List.iter
    (fun ((_, _, m) : int * int * xmsg) ->
      Network.deliver_remote (Rpc.network sh.rpc) ~at:m.x_at ~src:m.x_src ~dst:m.x_dst
        m.x_env)
    (Mailbox.drain sh.inbox)

let run ?until ?on_round t =
  Array.iter (fun sh -> arm_snapshots t sh) t.shards;
  let shards =
    Array.map
      (fun sh -> { Parallel.engine = sh.engine; drain = (fun () -> drain sh) })
      t.shards
  in
  let probe_interval = t.config.Config.snapshot_interval in
  let hook ~at =
    (match probe_interval with
    | Some interval when Time.compare at t.next_probe >= 0 ->
        run_probes t;
        t.next_probe <- Time.add at interval
    | _ -> ());
    match on_round with Some f -> f ~at | None -> ()
  in
  let stats = Parallel.run ~window:t.window ?until ~on_round:hook shards in
  t.last_stats <- Some stats;
  (* Quiescence-time probe pass: the periodic hook only fires when a
     barrier crosses the probe grid, so a run shorter than one window —
     or one with no snapshot interval configured — would otherwise end
     without a single conservation check. The domains are joined here, so
     the cross-shard reads are safe. *)
  run_probes t

let probes_run t = t.probes_run

(* --- quiescent whole-system operations (domains joined) --- *)

let flush_all_syncs t =
  Array.iter (Site.flush_sync ~force:true) t.store;
  Array.iter Site.flush_epochs t.store;
  run t

let replica_amounts t ~item =
  System_checks.replica_amounts ~topology:t.topology ~site:(fun i -> t.store.(i)) ~item

let av_sum t ~item =
  System_checks.av_sum ~topology:t.topology ~site:(fun i -> t.store.(i)) ~item

let av_conservation t ~item =
  System_checks.av_conservation ~topology:t.topology ~site:(fun i -> t.store.(i)) ~item

let decision_agreement t = System_checks.decision_agreement ~iter_sites:(iter_sites t)
let in_doubt_total t = System_checks.in_doubt_total ~iter_sites:(iter_sites t)

let sealed_epoch_agreement t =
  System_checks.sealed_epoch_agreement ~iter_sites:(iter_sites t)

let unsealed_intent_total t = System_checks.unsealed_intent_total ~iter_sites:(iter_sites t)

let check_invariants t =
  System_checks.check_invariants ~config:t.config ~topology:t.topology ~site:(fun i ->
      t.store.(i))
