type t =
  | Lossy_sync
  | Double_deposit
  | Unilateral_abort
  | Stale_reads
  | Forget_own_writes
  | Epoch_double_seal
  | Epoch_drop_intent

let all =
  [
    Lossy_sync;
    Double_deposit;
    Unilateral_abort;
    Stale_reads;
    Forget_own_writes;
    Epoch_double_seal;
    Epoch_drop_intent;
  ]

let name = function
  | Lossy_sync -> "lossy-sync"
  | Double_deposit -> "double-deposit"
  | Unilateral_abort -> "unilateral-abort"
  | Stale_reads -> "stale-reads"
  | Forget_own_writes -> "forget-own-writes"
  | Epoch_double_seal -> "epoch-double-seal"
  | Epoch_drop_intent -> "epoch-drop-intent"

let of_name s =
  match List.find_opt (fun m -> name m = s) all with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mutation %S (expected one of: %s)" s
           (String.concat ", " (List.map name all)))

(* One mutable cell per flag rather than a set: [enabled] sits on hot
   paths (sync receive, local reads) and must stay a load + branch. *)
let lossy_sync = ref false
let double_deposit = ref false
let unilateral_abort = ref false
let stale_reads = ref false
let forget_own_writes = ref false
let epoch_double_seal = ref false
let epoch_drop_intent = ref false

let cell = function
  | Lossy_sync -> lossy_sync
  | Double_deposit -> double_deposit
  | Unilateral_abort -> unilateral_abort
  | Stale_reads -> stale_reads
  | Forget_own_writes -> forget_own_writes
  | Epoch_double_seal -> epoch_double_seal
  | Epoch_drop_intent -> epoch_drop_intent

let enable m = cell m := true
let disable m = cell m := false
let enabled m = !(cell m)
let reset () = List.iter disable all
let any_enabled () = List.exists enabled all
