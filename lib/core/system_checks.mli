(** Whole-system invariant checks over a set of sites, shared by the
    sequential {!Cluster} and the parallel {!Pcluster}.

    Every function here reads state across sites, so in a parallel run
    they must only be called while the domains are quiescent: between
    runs, or from the barrier hook ({!Avdb_sim.Parallel.run}'s
    [on_round]). *)

val replica_amounts :
  topology:Topology.t -> site:(int -> Site.t) -> item:string -> int list
(** The item's amount at each subscribed site, in site order. *)

val av_sum : topology:Topology.t -> site:(int -> Site.t) -> item:string -> int
(** Σ over the item's subscribers of (available + held) AV. *)

val av_conservation :
  topology:Topology.t -> site:(int -> Site.t) -> item:string -> (unit, string) result
(** Live + consumed − minted must equal defined volume; holds at any
    instant with no grant response in flight. *)

val net_conservation : Avdb_net.Stats.t list -> (unit, string) result
(** received + dropped ≤ sent + duplicated over the {e summed} totals of
    the given stats instances (one per shard in a parallel run:
    cross-shard sends count on the sender's stats and deliver on the
    receiver's). *)

val decision_agreement : iter_sites:((Site.t -> unit) -> unit) -> (unit, string) result
(** Across every site's durable protocol log, each transaction id carries
    at most one outcome. Checkable at any instant. *)

val in_doubt_total : iter_sites:((Site.t -> unit) -> unit) -> int
(** Transactions without a logged outcome, summed over all sites. *)

val sealed_epoch_agreement :
  iter_sites:((Site.t -> unit) -> unit) -> (unit, string) result
(** Across every site's durable protocol log, each (item, epoch) carries
    at most one seal value: any two logs holding a seal for the pair hold
    the exact same intent sequence. Checkable at any instant. *)

val unsealed_intent_total : iter_sites:((Site.t -> unit) -> unit) -> int
(** Epoch-class write intents no logged seal contains yet, summed over
    all sites (quarantined items excluded) — the epoch analogue of
    {!in_doubt_total}, required to reach zero at quiescence. *)

val check_invariants :
  config:Config.t -> topology:Topology.t -> site:(int -> Site.t) -> (unit, string) result
(** Quiescence checks: replica agreement (autonomous mode), AV sum =
    replicated amount, non-negative AV entries; with epoch-class products
    also sealed-prefix agreement and a drained intent backlog. *)
