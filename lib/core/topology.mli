(** Per-item base-site sharding, partial replication and hierarchical AV
    circulation.

    The paper's evaluation hardwires one base (site 0) that coordinates
    every item and full replication of the whole catalogue at every site.
    Neither survives N = 1000: this module makes both a configuration
    dimension.

    - {e Base assignment}: which site is an item's primary (coordinates
      Centralized and Immediate updates, serves authoritative reads,
      anchors the termination protocol). [Hashed_base] shards items over
      the initial membership so no single site coordinates everything.
    - {e Replication}: which sites hold an item's replica at all. Under
      [Scattered k] each item lives at its base plus [k - 1] hash-chosen
      other sites; everyone else neither stores the row nor receives sync
      for it, so per-site live state is bounded by the interest set.
    - {e Hierarchy}: an optional [f]-ary tree over each item's subscriber
      ranks (base = root). A cold-cache AV request climbs to the site's
      tree parent instead of every site hammering the item's base.

    One resolved [t] is shared by all sites of a cluster; it is the only
    O(items × spread) structure, and there is exactly one copy. *)

type base_assignment =
  | Fixed_base of int  (** one site coordinates every item (legacy: 0) *)
  | Hashed_base  (** item name hashes to a base over the initial membership *)

type replication =
  | Full  (** every site replicates every item (legacy) *)
  | Scattered of int
      (** each item is replicated at its base plus [k - 1] other
          deterministically hash-chosen sites ([k] total, clamped to N) *)
  | Explicit of (string * int list) list
      (** item -> subscriber site indices (the base is always added);
          unlisted items replicate at their base only *)

type spec = {
  base_assignment : base_assignment;
  replication : replication;
  hierarchy_fanout : int option;
      (** [Some f]: AV requests climb an [f]-ary tree over each item's
          subscribers toward the base. [None]: flat (legacy). *)
}

val flat : spec
(** The paper's topology: base 0, full replication, no hierarchy. *)

val sharded : ?spread:int -> ?hierarchy_fanout:int -> unit -> spec
(** Hashed bases + [Scattered spread] (default 3). *)

val validate_spec : spec -> n_sites:int -> (unit, string) result

type t

val create : spec -> n_sites:int -> items:string list -> t
(** Resolves the spec against the initial membership [0 .. n_sites - 1]
    and the catalogue. Raises [Invalid_argument] on an invalid spec or an
    explicit subscriber index out of range. *)

val spec : t -> spec
val n_sites : t -> int

val version : t -> int
(** Bumped by every {!register_joiner}; per-site subscriber caches key on
    it instead of being invalidated by broadcast. *)

val is_full : t -> bool
(** [true] iff replication is [Full] — callers can skip per-item filters. *)

val base_index : t -> item:string -> int
(** The item's base (primary) site index. Total: items outside the
    catalogue hash to a stable base too. *)

val interested : t -> site:int -> item:string -> bool
(** Does [site] replicate [item]? The base of an item is always
    interested. *)

val subscribers : t -> item:string -> int list
(** Sorted site indices replicating the item (the base included). *)

val subscriber_count : t -> item:string -> int

val rank : t -> site:int -> item:string -> int option
(** Position of [site] among the item's subscribers with the base rotated
    to rank 0 — what AV allocation splits over and the hierarchy builds
    its tree on. [None] if the site does not subscribe. *)

val av_parent : t -> site:int -> item:string -> int option
(** The subscriber one hop toward the item's base in the configured
    hierarchy tree; [None] at the base, for non-subscribers, or without a
    hierarchy. *)

val register_joiner : t -> site:int -> items:string list -> unit
(** Records a joining site's declared interest set (O(|interest|): the
    membership event itself never iterates all sites or all items). *)

val default_joiner_interest : t -> site:int -> items:string list -> string list
(** A deterministic, hash-chosen interest set for a joiner (≈ spread ×
    items / N under [Scattered]; everything under [Full]). *)

val pp : Format.formatter -> t -> unit
