(* Topology-aware assignment of sites to execution domains.

   Cross-shard messages are what the parallel engine pays for (mailbox
   push + barrier-deferred delivery), and almost all traffic is per-item:
   sync broadcasts, AV circulation and 2PC rounds all run over an item's
   subscriber set. So the goal is to co-locate each item's base with as
   many of its subscribers as a balanced split allows. Subscriber sets
   are hash-scattered (not contiguous), so the assignment works from the
   actual sets: a greedy pass places each site on the domain where it
   already has the most co-subscribers, under a hard per-domain cap that
   keeps the shards balanced.

   The result is a pure function of (topology, n_domains) — no RNG, no
   iteration-order dependence — so every run of a seeded configuration
   shards identically. *)

type t = {
  n_domains : int;
  domain_of : int array;
  sites_of : int array array;
  cross_items : int;
}

let n_domains t = t.n_domains

let domain_of t site =
  if site < 0 || site >= Array.length t.domain_of then
    invalid_arg "Placement.domain_of: site out of range";
  t.domain_of.(site)

let sites_of t domain =
  if domain < 0 || domain >= t.n_domains then
    invalid_arg "Placement.sites_of: domain out of range";
  t.sites_of.(domain)

let cross_items t = t.cross_items

let create topology ~n_domains ~items =
  let n_sites = Topology.n_sites topology in
  if n_domains < 1 then invalid_arg "Placement.create: n_domains must be >= 1";
  let n_domains = Stdlib.min n_domains n_sites in
  (* Per-item subscriber arrays and the reverse index: which items each
     site subscribes to. Built once; the greedy pass below only walks
     these. *)
  let subs = Array.of_list (List.map (fun item ->
      Array.of_list (Topology.subscribers topology ~item)) items)
  in
  let site_items = Array.make n_sites [] in
  Array.iteri
    (fun ix ss -> Array.iter (fun s -> site_items.(s) <- ix :: site_items.(s)) ss)
    subs;
  let domain_of = Array.make n_sites (-1) in
  let load = Array.make n_domains 0 in
  (* Hard cap so no domain ends up with more than its balanced share
     (remainder spread over the lowest-numbered domains). *)
  let cap = Array.init n_domains (fun d ->
      (n_sites / n_domains) + if d < n_sites mod n_domains then 1 else 0)
  in
  let affinity = Array.make n_domains 0 in
  for s = 0 to n_sites - 1 do
    Array.fill affinity 0 n_domains 0;
    List.iter
      (fun ix ->
        Array.iter
          (fun peer ->
            let d = domain_of.(peer) in
            if d >= 0 then affinity.(d) <- affinity.(d) + 1)
          subs.(ix))
      site_items.(s);
    (* Best open domain: most co-subscribers, then least loaded, then
       lowest index — every tie-break deterministic. *)
    let best = ref (-1) in
    for d = 0 to n_domains - 1 do
      if load.(d) < cap.(d) then
        let better =
          !best < 0
          || affinity.(d) > affinity.(!best)
          || (affinity.(d) = affinity.(!best) && load.(d) < load.(!best))
        in
        if better then best := d
    done;
    domain_of.(s) <- !best;
    load.(!best) <- load.(!best) + 1
  done;
  let sites_of =
    Array.init n_domains (fun d ->
        let out = Array.make load.(d) 0 in
        let k = ref 0 in
        for s = 0 to n_sites - 1 do
          if domain_of.(s) = d then begin
            out.(!k) <- s;
            incr k
          end
        done;
        out)
  in
  let cross_items =
    Array.fold_left
      (fun acc ss ->
        match Array.length ss with
        | 0 | 1 -> acc
        | _ ->
            let d0 = domain_of.(ss.(0)) in
            if Array.exists (fun s -> domain_of.(s) <> d0) ss then acc + 1 else acc)
      0 subs
  in
  { n_domains; domain_of; sites_of; cross_items }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d domains over %d sites (%d cross-domain items)" t.n_domains
    (Array.length t.domain_of) t.cross_items;
  Array.iteri
    (fun d sites ->
      Format.fprintf ppf "@,  domain %d: %d sites" d (Array.length sites))
    t.sites_of;
  Format.fprintf ppf "@]"
