(** The parallel (multi-domain) cluster.

    The same simulated system as {!Cluster}, with the sites sharded
    across OCaml domains by {!Placement} and executed by
    {!Avdb_sim.Parallel} in conservative barrier-stepped windows of one
    latency lower bound. Each shard owns a complete single-domain stack
    — engine, RPC, trace, tracer, metrics registry — and the only
    cross-domain traffic is the lock-free mailbox of routed network
    messages drained at barriers.

    {b Determinism.} Shard seeds, the window grid and the rank-ordered
    mailbox drain are pure functions of (config, topology): a same-seed
    run yields byte-identical state and exports at any real-time
    interleaving of the domains. Shard 0 keeps the config seed, so
    [domains = 1] replays the sequential cluster exactly.

    {b Threading contract.} Everything in this interface must be called
    with the domains quiescent — before the first {!run}, between runs,
    or from {!run}'s [on_round] barrier hook. Only the event handlers
    the shards execute (and the closures scheduled onto shard engines
    via {!schedule_at_site} / {!schedule_all}) run on other domains, and
    each may touch only its own shard's sites and state.

    Not supported in parallel mode: live joins ({!Cluster.add_retailer})
    — the topology and placement are fixed at creation. *)

type t

val create : Config.t -> t
(** Shards per [config.domains] (clamped to the site count). Raises
    [Invalid_argument] if {!Config.validate} fails. *)

val config : t -> Config.t
val topology : t -> Topology.t
val placement : t -> Placement.t

val n_domains : t -> int
(** Effective shard count after clamping. *)

val n_sites : t -> int

val window : t -> Avdb_sim.Time.t
(** The lookahead window (the latency lower bound). *)

val site : t -> int -> Site.t
val sites : t -> Site.t array
val domain_of_site : t -> int -> int
val base_site_for : t -> item:string -> Site.t
val subscribers : t -> item:string -> int list
val interested : t -> site:int -> item:string -> bool

val now : t -> Avdb_sim.Time.t
(** The common virtual clock (all shard clocks are aligned whenever the
    domains are quiescent). *)

val run : ?until:Avdb_sim.Time.t -> ?on_round:(at:Avdb_sim.Time.t -> unit) -> t -> unit
(** Drains all shards to quiescence (bounded by [until]) on [n_domains]
    domains. [on_round] runs serially at every barrier with every other
    domain parked — the one place mid-run cross-shard reads are safe.
    When [snapshot_interval] is configured, cross-shard invariant probes
    (AV conservation, net-stats conservation) run at barriers on that
    cadence and per-shard registry snapshots tick on each shard's own
    engine. *)

val rounds : t -> int
(** Windows executed by the last {!run} (0 before the first). *)

val probes_run : t -> int
(** Number of cross-shard invariant-probe passes executed so far. Every
    {!run} ends with one unconditional quiescence-time pass (in addition
    to any periodic barrier passes), so this is ≥ the number of runs —
    a run shorter than one window still gets its conservation checks. *)

val schedule_at_site :
  t -> site:int -> at:Avdb_sim.Time.t -> (unit -> unit) -> unit
(** Schedules a closure on the owning shard of [site] at virtual time
    [at]; the closure runs on that shard's domain and must only touch
    that shard's state. *)

val schedule_all : t -> at:Avdb_sim.Time.t -> (shard:int -> unit) -> unit
(** Schedules a closure on {e every} shard at the same virtual instant —
    the common window grid makes this an atomic cross-shard event. *)

(** {2 Fault injection}

    Network knobs are sender-side state: each call mirrors the change
    into every shard's network. The immediate variants apply now (only
    with the domains quiescent); the [_at] variants install the change
    at one virtual instant on every shard, for fault schedules armed
    before a run. Crash/recover a site by scheduling {!Site.crash} /
    {!Site.recover} onto its owning shard with {!schedule_at_site}. *)

val partition : t -> int -> int -> unit
val heal : t -> int -> int -> unit
val set_drop_probability : t -> float -> unit
val set_duplicate_probability : t -> float -> unit
val set_reorder_probability : t -> float -> unit
val partition_at : t -> at:Avdb_sim.Time.t -> int -> int -> unit
val heal_at : t -> at:Avdb_sim.Time.t -> int -> int -> unit
val set_drop_probability_at : t -> at:Avdb_sim.Time.t -> float -> unit
val set_duplicate_probability_at : t -> at:Avdb_sim.Time.t -> float -> unit
val set_reorder_probability_at : t -> at:Avdb_sim.Time.t -> float -> unit

(** {2 Observability}

    Per-shard instruments (single-writer each) plus merged deterministic
    views. A site's [net.*] gauges come from its owning shard's stats:
    sends originate there and deliveries land there, but a drop charged
    by a peer shard's sender-side draw is visible only in the summed
    totals. *)

val engines : t -> Avdb_sim.Engine.t array
(** Per-shard engines in rank order. [Engine.now] / scheduling on shard
    [r]'s engine are safe only from that shard's own event handlers, or
    with the domains quiescent. *)

val net_stats : t -> Avdb_net.Stats.t array
val traces : t -> Avdb_sim.Trace.t array
val tracers : t -> Avdb_obs.Tracer.t array
val registries : t -> Avdb_obs.Registry.t array

val trace_events :
  ?category:string -> ?min_level:Avdb_sim.Trace.level -> t -> Avdb_sim.Trace.event list
(** All shards' trace events merged by timestamp (stable by shard). *)

val spans : t -> Avdb_obs.Span.t list
(** All shards' retained spans merged by [(start, id)] — byte-stable
    across same-seed runs thanks to per-shard id striding. *)

val metric_samples : t -> Avdb_obs.Registry.sample list

val snapshot_now : t -> unit
(** Cross-shard invariant probes plus one registry snapshot per shard.
    Quiescent-only. *)

val total_correspondences : t -> int
val per_site_correspondences : t -> (int * int) list
val live_words_per_site : t -> (int * int) list

(** {2 Whole-system introspection (quiescent-only)} *)

val flush_all_syncs : t -> unit
val replica_amounts : t -> item:string -> int list
val av_sum : t -> item:string -> int
val av_conservation : t -> item:string -> (unit, string) result
val decision_agreement : t -> (unit, string) result
val in_doubt_total : t -> int

val sealed_epoch_agreement : t -> (unit, string) result
(** See {!System_checks.sealed_epoch_agreement}; quiescent-only here. *)

val unsealed_intent_total : t -> int
(** See {!System_checks.unsealed_intent_total}; quiescent-only here. *)

val check_invariants : t -> (unit, string) result
