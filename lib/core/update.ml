open Avdb_sim

type kind = Local | With_transfer of int | Immediate | Central | Epoch

type reason =
  | Av_exhausted
  | Txn_aborted
  | Unreachable
  | Insufficient_stock
  | Not_regular of string
  | Unknown_item of string

type outcome = Applied of kind | Rejected of reason

type result = { outcome : outcome; latency : Time.t }

let pp_kind ppf = function
  | Local -> Format.pp_print_string ppf "local"
  | With_transfer n -> Format.fprintf ppf "transfer(%d rounds)" n
  | Immediate -> Format.pp_print_string ppf "immediate"
  | Central -> Format.pp_print_string ppf "central"
  | Epoch -> Format.pp_print_string ppf "epoch"

let pp_reason ppf = function
  | Av_exhausted -> Format.pp_print_string ppf "av-exhausted"
  | Txn_aborted -> Format.pp_print_string ppf "txn-aborted"
  | Unreachable -> Format.pp_print_string ppf "unreachable"
  | Insufficient_stock -> Format.pp_print_string ppf "insufficient-stock"
  | Not_regular item -> Format.fprintf ppf "not-regular(%s)" item
  | Unknown_item item -> Format.fprintf ppf "unknown-item(%s)" item

let pp_result ppf t =
  match t.outcome with
  | Applied kind -> Format.fprintf ppf "applied(%a) in %a" pp_kind kind Time.pp t.latency
  | Rejected reason ->
      Format.fprintf ppf "rejected(%a) in %a" pp_reason reason Time.pp t.latency

let is_applied t = match t.outcome with Applied _ -> true | Rejected _ -> false

module Metrics = struct
  type t = {
    mutable submitted : int;
    mutable applied_local : int;
    mutable applied_transfer : int;
    mutable applied_immediate : int;
    mutable applied_central : int;
    mutable applied_epoch : int;
    mutable rejected : int;
    mutable av_requests_sent : int;
    mutable prefetch_requests : int;
    mutable av_volume_received : int;
    mutable av_volume_granted : int;
    mutable sync_batches_sent : int;
    mutable termination_queries : int;
    mutable in_doubt_recovered : int;
    mutable decision_rebroadcasts : int;
    mutable av_shortages : int;
    mutable checksum_failures : int;
    mutable segments_quarantined : int;
    mutable repairs : int;
    mutable repair_bytes : int;
    mutable epochs_sealed : int;
    mutable epoch_intents_resent : int;
    mutable epoch_takeovers : int;
    latency : Avdb_metrics.Sketch.t;
    transfer_rounds : Avdb_metrics.Sketch.t;
    grant_latency : Avdb_metrics.Sketch.t;
  }

  let create () =
    {
      submitted = 0;
      applied_local = 0;
      applied_transfer = 0;
      applied_immediate = 0;
      applied_central = 0;
      applied_epoch = 0;
      rejected = 0;
      av_requests_sent = 0;
      prefetch_requests = 0;
      av_volume_received = 0;
      av_volume_granted = 0;
      sync_batches_sent = 0;
      termination_queries = 0;
      in_doubt_recovered = 0;
      decision_rebroadcasts = 0;
      av_shortages = 0;
      checksum_failures = 0;
      segments_quarantined = 0;
      repairs = 0;
      repair_bytes = 0;
      epochs_sealed = 0;
      epoch_intents_resent = 0;
      epoch_takeovers = 0;
      latency = Avdb_metrics.Sketch.create ();
      transfer_rounds = Avdb_metrics.Sketch.create ();
      grant_latency = Avdb_metrics.Sketch.create ();
    }

  let applied t =
    t.applied_local + t.applied_transfer + t.applied_immediate + t.applied_central
    + t.applied_epoch

  let record t (update_result : result) =
    Avdb_metrics.Sketch.add t.latency (Time.to_ms update_result.latency);
    match update_result.outcome with
    | Applied Local -> t.applied_local <- t.applied_local + 1
    | Applied (With_transfer rounds) ->
        t.applied_transfer <- t.applied_transfer + 1;
        Avdb_metrics.Sketch.add t.transfer_rounds (float_of_int rounds)
    | Applied Immediate -> t.applied_immediate <- t.applied_immediate + 1
    | Applied Central -> t.applied_central <- t.applied_central + 1
    | Applied Epoch -> t.applied_epoch <- t.applied_epoch + 1
    | Rejected _ -> t.rejected <- t.rejected + 1

  let pp ppf t =
    Format.fprintf ppf
      "submitted=%d local=%d transfer=%d immediate=%d central=%d epoch=%d rejected=%d \
       av_req=%d"
      t.submitted t.applied_local t.applied_transfer t.applied_immediate t.applied_central
      t.applied_epoch t.rejected t.av_requests_sent
end
