open Avdb_sim

type checkpoint = {
  updates_done : int;
  total_correspondences : int;
  per_site_correspondences : (int * int) list;
  applied : int;
  rejected : int;
  virtual_time : Time.t;
}

type outcome = {
  checkpoints : checkpoint list;
  final : checkpoint;
  results : Update.result list;
}

let snapshot cluster ~updates_done ~applied ~rejected =
  {
    updates_done;
    total_correspondences = Cluster.total_correspondences cluster;
    per_site_correspondences = Cluster.per_site_correspondences cluster;
    applied;
    rejected;
    virtual_time = Avdb_sim.Engine.now (Cluster.engine cluster);
  }

let run cluster ~nth_update ~total_updates ?(interval = Time.of_ms 10.)
    ?checkpoint_every ?(submit = fun site ~item ~delta k -> Site.submit_update site ~item ~delta k)
    () =
  if total_updates < 0 then invalid_arg "Runner.run: negative total_updates";
  let checkpoint_every =
    match checkpoint_every with
    | Some c when c > 0 -> c
    | Some _ -> invalid_arg "Runner.run: checkpoint_every must be positive"
    | None -> Stdlib.max 1 (total_updates / 10)
  in
  let engine = Cluster.engine cluster in
  let done_count = ref 0 in
  let applied = ref 0 in
  let rejected = ref 0 in
  let rev_results = ref [] in
  let rev_checkpoints = ref [] in
  let on_result result =
    incr done_count;
    rev_results := result :: !rev_results;
    if Update.is_applied result then incr applied else incr rejected;
    if !done_count mod checkpoint_every = 0 then
      rev_checkpoints :=
        snapshot cluster ~updates_done:!done_count ~applied:!applied ~rejected:!rejected
        :: !rev_checkpoints
  in
  (* Relative to the current virtual time, so several runs compose on one
     cluster (e.g. add sites between phases). Updates are drip-fed — each
     event schedules its successor at the next fixed slot — rather than
     preloaded, so the event queue holds a handful of events instead of
     [total_updates] and every heap operation stays cheap. Fire times are
     identical either way: start + k * interval. *)
  let start = Avdb_sim.Engine.now engine in
  let rec arm k =
    if k < total_updates then
      ignore
        (Engine.schedule_at engine
           ~at:(Time.add start (Time.mul interval (float_of_int k)))
           (fun () ->
             arm (k + 1);
             let site_index, item, delta = nth_update k in
             submit (Cluster.site cluster site_index) ~item ~delta on_result))
  in
  arm 0;
  Cluster.run cluster;
  let final =
    snapshot cluster ~updates_done:!done_count ~applied:!applied ~rejected:!rejected
  in
  { checkpoints = List.rev !rev_checkpoints; final; results = List.rev !rev_results }
