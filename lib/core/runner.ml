open Avdb_sim

type checkpoint = {
  updates_done : int;
  total_correspondences : int;
  per_site_correspondences : (int * int) list;
  applied : int;
  rejected : int;
  virtual_time : Time.t;
}

type outcome = {
  checkpoints : checkpoint list;
  final : checkpoint;
  results : Update.result list;
}

let snapshot cluster ~updates_done ~applied ~rejected =
  {
    updates_done;
    total_correspondences = Cluster.total_correspondences cluster;
    per_site_correspondences = Cluster.per_site_correspondences cluster;
    applied;
    rejected;
    virtual_time = Avdb_sim.Engine.now (Cluster.engine cluster);
  }

let run cluster ~nth_update ~total_updates ?(interval = Time.of_ms 10.)
    ?checkpoint_every ?(submit = fun site ~item ~delta k -> Site.submit_update site ~item ~delta k)
    () =
  if total_updates < 0 then invalid_arg "Runner.run: negative total_updates";
  let checkpoint_every =
    match checkpoint_every with
    | Some c when c > 0 -> c
    | Some _ -> invalid_arg "Runner.run: checkpoint_every must be positive"
    | None -> Stdlib.max 1 (total_updates / 10)
  in
  let engine = Cluster.engine cluster in
  let done_count = ref 0 in
  let applied = ref 0 in
  let rejected = ref 0 in
  let rev_results = ref [] in
  let rev_checkpoints = ref [] in
  let on_result result =
    incr done_count;
    rev_results := result :: !rev_results;
    if Update.is_applied result then incr applied else incr rejected;
    if !done_count mod checkpoint_every = 0 then
      rev_checkpoints :=
        snapshot cluster ~updates_done:!done_count ~applied:!applied ~rejected:!rejected
        :: !rev_checkpoints
  in
  (* Relative to the current virtual time, so several runs compose on one
     cluster (e.g. add sites between phases). Updates are drip-fed — each
     event schedules its successor at the next fixed slot — rather than
     preloaded, so the event queue holds a handful of events instead of
     [total_updates] and every heap operation stays cheap. Fire times are
     identical either way: start + k * interval. *)
  let start = Avdb_sim.Engine.now engine in
  let rec arm k =
    if k < total_updates then
      ignore
        (Engine.schedule_at engine
           ~at:(Time.add start (Time.mul interval (float_of_int k)))
           (fun () ->
             arm (k + 1);
             let site_index, item, delta = nth_update k in
             submit (Cluster.site cluster site_index) ~item ~delta on_result))
  in
  arm 0;
  Cluster.run cluster;
  let final =
    snapshot cluster ~updates_done:!done_count ~applied:!applied ~rejected:!rejected
  in
  { checkpoints = List.rev !rev_checkpoints; final; results = List.rev !rev_results }

(* The parallel variant: same fire times (start + k * interval), with
   update [k] drip-fed on the shard that owns its submission site, so
   every shard arms only its own chain and no completion callback ever
   crosses a domain. Results are collected into per-update slots (each
   written by exactly one shard) and per-shard counters, then assembled
   after the domains join. Mid-run checkpoints would read cross-shard
   stats from a running domain, so only the final checkpoint is taken;
   [results] comes back in submission order, not completion order. *)
let run_parallel pcluster ~nth_update ~total_updates ?(interval = Time.of_ms 10.)
    ?(submit =
      fun ~shard:_ site ~item ~delta k -> Site.submit_update site ~item ~delta k) () =
  if total_updates < 0 then invalid_arg "Runner.run_parallel: negative total_updates";
  (* Workload generators are stateful; materialize every update on the
     calling domain before any shard runs. *)
  let updates = Array.init total_updates nth_update in
  let n_shards = Pcluster.n_domains pcluster in
  let results = Array.make total_updates None in
  let applied = Array.make n_shards 0 in
  let rejected = Array.make n_shards 0 in
  let by_shard = Array.make n_shards [] in
  for k = total_updates - 1 downto 0 do
    let site_index, _, _ = updates.(k) in
    let d = Pcluster.domain_of_site pcluster site_index in
    by_shard.(d) <- k :: by_shard.(d)
  done;
  let start = Pcluster.now pcluster in
  Array.iteri
    (fun d ks ->
      let ks = Array.of_list ks in
      let rec arm j =
        if j < Array.length ks then begin
          let k = ks.(j) in
          let site_index, item, delta = updates.(k) in
          Pcluster.schedule_at_site pcluster ~site:site_index
            ~at:(Time.add start (Time.mul interval (float_of_int k)))
            (fun () ->
              arm (j + 1);
              submit ~shard:d (Pcluster.site pcluster site_index) ~item ~delta
                (fun result ->
                  results.(k) <- Some result;
                  if Update.is_applied result then applied.(d) <- applied.(d) + 1
                  else rejected.(d) <- rejected.(d) + 1))
        end
      in
      arm 0)
    by_shard;
  Pcluster.run pcluster;
  let sum = Array.fold_left ( + ) 0 in
  let results = Array.to_list updates |> List.mapi (fun k _ -> results.(k)) |> List.filter_map Fun.id in
  let final =
    {
      updates_done = List.length results;
      total_correspondences = Pcluster.total_correspondences pcluster;
      per_site_correspondences = Pcluster.per_site_correspondences pcluster;
      applied = sum applied;
      rejected = sum rejected;
      virtual_time = Pcluster.now pcluster;
    }
  in
  { checkpoints = []; final; results }
