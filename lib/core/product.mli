(** Product catalogue entries (§1.1).

    Regular products are kept in stock and may be updated autonomously
    under AV (Delay Update); non-regular products are made to order and
    every site must see their updates immediately (Immediate Update). *)

type kind = Regular | Non_regular | Epoch

type t = { name : string; initial_amount : int; kind : kind }

val regular : string -> initial_amount:int -> t
val non_regular : string -> initial_amount:int -> t

val epoch : string -> initial_amount:int -> t
(** An epoch-class product: strong total-order updates through the
    asynchronous epoch-quorum commit instead of per-transaction 2PC. *)

val is_regular : t -> bool
val is_epoch : t -> bool
val pp : Format.formatter -> t -> unit

val catalogue :
  n_regular:int -> n_non_regular:int -> initial_amount:int -> t list
(** ["product0".."productN-1"] regular, then ["special0"...] non-regular,
    all with the same initial stock. *)

val mixed :
  n_regular:int -> n_non_regular:int -> n_epoch:int -> initial_amount:int -> t list
(** {!catalogue} followed by ["epoch0".."epochN-1"] epoch-class products. *)
