(** System configuration. *)

(** Which consistency machinery the cluster runs. *)
type mode =
  | Autonomous  (** the paper's proposal: AV + Delay/Immediate Update *)
  | Centralized  (** the baseline: every remote update round-trips to base *)

(** Where the initial AV for regular products lives. *)
type av_allocation =
  | Even  (** split equally across sites (remainder to the base) *)
  | All_at_base
  | Retailers_only  (** split equally across non-base sites *)

type t = {
  n_sites : int;  (** ≥ 1; site 0 is the base (maker) *)
  products : Product.t list;
  mode : mode;
  allocation : av_allocation;
  strategy : Avdb_av.Strategy.t;
  latency : Avdb_net.Latency.t;
  drop_probability : float;
  duplicate_probability : float;
      (** per-message chance the network delivers an extra copy; the RPC
          reply cache and the cumulative sync counters absorb these *)
  reorder_probability : float;
      (** per-message chance of bypassing the per-link FIFO guarantee *)
  bandwidth_bytes_per_sec : int option;
      (** finite per-link bandwidth: messages serialise behind each other
          before the propagation delay; [None] = infinite (default) *)
  rpc_timeout : Avdb_sim.Time.t;
  rpc_retry : Avdb_net.Rpc.retry_policy;
      (** retransmission policy for AV requests, the centralized baseline,
          membership and the 2PC termination protocol; retransmissions
          reuse the request id so servers execute at most once. Default
          {!Avdb_net.Rpc.no_retry} (the paper's single-shot calls). *)
  prepare_timeout : Avdb_sim.Time.t;  (** Immediate Update vote collection *)
  ack_timeout : Avdb_sim.Time.t;  (** Immediate Update decision acks *)
  lock_timeout : Avdb_sim.Time.t;  (** participant lock wait *)
  decision_timeout : Avdb_sim.Time.t;
      (** how long a prepared participant waits for the decision before
          running the termination protocol (query the coordinator, then
          the base and fellow cohort members; presume abort only when
          the coordinator durably reports it never decided) *)
  rebroadcast_interval : Avdb_sim.Time.t;
      (** pacing of a recovered coordinator's decision re-broadcast while
          acks are outstanding. Must be positive. *)
  rebroadcast_rounds : int;
      (** how many re-broadcast rounds a recovered coordinator attempts
          before giving up the push path (≥ 0). Bounded so a permanently
          down participant cannot keep the event queue alive forever; the
          participants' pull-side termination protocol remains the safety
          net. *)
  sync_interval : Avdb_sim.Time.t option;
      (** period of Delay Update's lazy delta broadcast; [None] disables *)
  sync_fanout : int option;
      (** [None] (default): every flush notifies every peer — each peer is
          at most one [sync_interval] behind. [Some k]: each flush
          notifies only [k] peers, rotating round-robin, dividing sync
          messages by roughly [(n-1)/k] at the cost of proportionally
          older replicas. Cumulative versioned counters make the rotation
          safe: whichever flush finally reaches a peer carries everything
          it missed. Convergence flushes ({!Site.flush_sync}
          [~force:true]) always broadcast. Must be ≥ 1 *)
  snapshot_interval : Avdb_sim.Time.t option;
      (** period of the observability snapshot: samples every registered
          metric into the cluster's time series and runs the invariant
          probes (AV conservation, network stats conservation). Must be
          positive; [None] disables (default). Snapshots only fire while
          the event queue is non-empty, so an idle cluster still reaches
          quiescence *)
  record_history : bool;
      (** when true every applied local update also appends a row to a
          ["history"] audit table (item, delta, path) in the same storage
          engine — queryable with {!Avdb_store.Query} and recovered with
          the WAL like any other table *)
  tracing : bool;
      (** when false the cluster's span tracer runs disabled: hot paths
          skip span construction entirely (near-zero cost) and exporters
          see no spans. Metric gauges and counters still work. Default
          [true]; bench and nemesis runs that attach no exporter turn it
          off. *)
  trace_sample : float;
      (** head-sampling rate in [[0, 1]]: the fraction of root spans (and
          their whole trees) the tracer retains, decided by a pure hash of
          [(seed, root ordinal)] so a seeded run is reproducible at any
          rate. Warn-status spans and spans slower than [trace_slow] are
          always kept regardless. [1.] (default) keeps everything. *)
  trace_slow : Avdb_sim.Time.t option;
      (** spans at least this long are retained even when head sampling
          discarded their tree; [None] (default) disables the slow-span
          override *)
  metrics_retention : int;
      (** how many snapshots of each metric series the registry keeps
          in memory (a per-series ring; ≥ 1, default 512). Bounds registry
          memory at large N: older samples fall off the back. *)
  prefetch_low : int option;
      (** autonomous AV circulation (§3.4, extension): after a Delay
          Update leaves an item's available AV below this watermark, the
          accelerator replenishes in the background up to twice the
          watermark. [None] keeps the paper's purely on-demand scheme. *)
  topology : Topology.spec;
      (** per-item base assignment, replica placement (interest sets) and
          optional hierarchical AV circulation — {!Topology.flat}
          reproduces the paper's single-base fully-replicated setup *)
  segment_frames : int;
      (** how many records each on-disk log segment holds before the
          writer seals it and starts the next (≥ 1, default 64). Smaller
          segments bound the blast radius of a corrupt or lost segment at
          the cost of more header overhead. *)
  epoch_interval : Avdb_sim.Time.t;
      (** epoch-quorum commit progress-pump cadence (must be positive,
          default 5 ms): a site with unsealed intents re-sends them every
          tick, the sequencer debounces epoch closes by one tick, and
          takeover candidacy escalates one rank every few ticks. *)
  epoch_batch : int;
      (** buffered intents that make the sequencer close the open epoch
          immediately instead of waiting for the next tick (≥ 1,
          default 8) — the batching lever of the epoch class. *)
  repair_interval : Avdb_sim.Time.t;
      (** pacing of corruption-repair donor retries and pending-transaction
          watch polls after a storage fault. Must be positive. *)
  domains : int;
      (** how many OCaml domains execute the simulation (≥ 1, default 1).
          [1] is the sequential engine. [> 1] selects the parallel engine
          ({!Pcluster}): sites are sharded across domains by
          {!Placement}, each domain runs its own event queue, and shards
          synchronise in conservative barrier-stepped windows derived
          from the latency lower bound — which must therefore be
          positive ({!Avdb_net.Latency.lower_bound}); validation rejects
          e.g. Gaussian latency with [domains > 1]. Same-seed runs are
          deterministic at any domain count. *)
  seed : int;
}

val default : t
(** The paper's §4 setup: 3 sites (1 maker + 2 retailers), 100 regular
    products of initial stock 100 with AV split evenly, paper strategy
    (richest-known selection, half granting), 1 ms constant latency,
    no loss, lazy sync disabled. *)

val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
