(** Mergeable log-bucketed quantile sketch (DDSketch-style).

    Fixed memory regardless of how many values are added: positive values
    land in logarithmically spaced buckets chosen so every quantile
    estimate carries a bounded {e relative} error of [alpha] (default
    2%), while non-positive values are counted exactly in a dedicated
    zero bucket. Bucket counts are integers, so merging two sketches is
    exactly associative and commutative — per-site sketches can be
    combined at export into one cluster-wide distribution without any
    loss beyond the per-sketch bucketing itself.

    Unlike {!Histogram}, which stores every sample, a sketch never grows
    past its bucket array (a few hundred ints for the default value
    range of 1e-3 .. 1e7); the bucket array itself is allocated lazily
    on the first positive value, so registering thousands of idle
    sketches costs a handful of words each. *)

type t

val create : ?alpha:float -> unit -> t
(** [create ?alpha ()] makes an empty sketch with relative accuracy
    [alpha] (default [0.02]). Raises [Invalid_argument] unless
    [0 < alpha < 1]. *)

val alpha : t -> float

val add : t -> float -> unit
(** Add one value. Non-finite values are ignored. Values [<= 0] are
    counted exactly as zero; positive values below/above the sketch's
    value range ([1e-3 .. 1e7]) clamp into the edge buckets (their
    quantile estimates saturate, but [min]/[max]/[sum] stay exact). *)

val count : t -> int
val zero_count : t -> int
(** Number of recorded values that were [<= 0]. *)

val sum : t -> float
val mean : t -> float
(** Exact mean ([nan] when empty). *)

val min : t -> float
val max : t -> float
(** Exact extrema of the added values ([nan] when empty). *)

val percentile : t -> float -> float
(** [percentile t p] estimates the [p]-th percentile, [p] in [0, 100]
    ([Invalid_argument] otherwise; [nan] when empty). The estimate has
    relative error at most [alpha] for in-range positive values and is
    clamped into [[min t, max t]]. *)

val merge : t -> t -> t
(** [merge a b] is a fresh sketch holding both value sets. Raises
    [Invalid_argument] when the accuracies differ. [a] and [b] are not
    modified. *)

val buckets : t -> (int * int) list
(** Non-empty positive buckets as [(log-bucket index, count)] pairs in
    increasing index order — the mergeable state, useful for testing
    that merge is exact. *)

val memory_words : t -> int
(** Approximate heap footprint in words (record + bucket array). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
