(* DDSketch-style quantile sketch: positive values are bucketed by
   ceil(log_gamma v) with gamma = (1+alpha)/(1-alpha), which pins the
   relative error of any bucket's midpoint estimate at alpha. Counts
   are plain ints, so merging is exact (associative, commutative) —
   the property the registry relies on to combine per-site sketches
   into cluster-wide percentiles at export time. *)

let min_value = 1e-3
let max_value = 1e7

(* The running float stats live in their own all-float record: a mixed
   int/float record boxes every float store, which would put three words
   of allocation on every [add] — and [add] sits on the applied-update
   hot path. An all-float record stores doubles flat, so updating these
   allocates nothing. *)
type fstats = { mutable sum : float; mutable vmin : float; mutable vmax : float }

type t = {
  alpha : float;
  gamma_plus_1 : float;
  log_gamma : float;
  min_index : int;
  max_index : int;
  mutable counts : int array; (* [||] until the first positive value *)
  mutable zero : int; (* values <= 0, counted exactly *)
  mutable count : int;
  fs : fstats;
}

let create ?(alpha = 0.02) () =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1. +. alpha) /. (1. -. alpha) in
  let log_gamma = log gamma in
  {
    alpha;
    gamma_plus_1 = gamma +. 1.;
    log_gamma;
    min_index = int_of_float (ceil (log min_value /. log_gamma));
    max_index = int_of_float (ceil (log max_value /. log_gamma));
    counts = [||];
    zero = 0;
    count = 0;
    fs = { sum = 0.; vmin = infinity; vmax = neg_infinity };
  }

let alpha t = t.alpha
let count t = t.count
let zero_count t = t.zero
let sum t = t.fs.sum
let mean t = if t.count = 0 then nan else t.fs.sum /. float_of_int t.count
let min t = if t.count = 0 then nan else t.fs.vmin
let max t = if t.count = 0 then nan else t.fs.vmax
let n_buckets t = t.max_index - t.min_index + 1

let bucket_index t v =
  let i = int_of_float (ceil (log v /. t.log_gamma)) in
  if i < t.min_index then t.min_index
  else if i > t.max_index then t.max_index
  else i

(* Midpoint of bucket i's value interval (gamma^(i-1), gamma^i]:
   2 gamma^i / (gamma + 1). *)
let bucket_value t i =
  2. *. exp (float_of_int i *. t.log_gamma) /. t.gamma_plus_1

let add t v =
  if Float.is_nan v || v = infinity || v = neg_infinity then ()
  else begin
    t.count <- t.count + 1;
    t.fs.sum <- t.fs.sum +. v;
    if v < t.fs.vmin then t.fs.vmin <- v;
    if v > t.fs.vmax then t.fs.vmax <- v;
    if v <= 0. then t.zero <- t.zero + 1
    else begin
      if Array.length t.counts = 0 then t.counts <- Array.make (n_buckets t) 0;
      let slot = bucket_index t v - t.min_index in
      t.counts.(slot) <- t.counts.(slot) + 1
    end
  end

let percentile t p =
  if not (p >= 0. && p <= 100.) then
    invalid_arg "Sketch.percentile: p must be in [0, 100]";
  if t.count = 0 then nan
  else begin
    let rank = int_of_float (p /. 100. *. float_of_int (t.count - 1)) in
    let est =
      if rank < t.zero then 0.
      else begin
        let cum = ref t.zero and v = ref t.fs.vmax in
        (try
           Array.iteri
             (fun slot c ->
               if c > 0 then begin
                 cum := !cum + c;
                 if !cum > rank then begin
                   v := bucket_value t (slot + t.min_index);
                   raise Exit
                 end
               end)
             t.counts
         with Exit -> ());
        !v
      end
    in
    (* The midpoint estimate can stick out past the true extrema; the
       extrema are exact, so clamp. *)
    Float.max t.fs.vmin (Float.min t.fs.vmax est)
  end

let merge a b =
  if a.alpha <> b.alpha then invalid_arg "Sketch.merge: alpha mismatch";
  let r = create ~alpha:a.alpha () in
  let merge_counts src =
    if Array.length src.counts > 0 then begin
      if Array.length r.counts = 0 then r.counts <- Array.make (n_buckets r) 0;
      Array.iteri (fun i c -> r.counts.(i) <- r.counts.(i) + c) src.counts
    end
  in
  merge_counts a;
  merge_counts b;
  r.zero <- a.zero + b.zero;
  r.count <- a.count + b.count;
  r.fs.sum <- a.fs.sum +. b.fs.sum;
  r.fs.vmin <- Float.min a.fs.vmin b.fs.vmin;
  r.fs.vmax <- Float.max a.fs.vmax b.fs.vmax;
  r

let buckets t =
  let acc = ref [] in
  Array.iteri
    (fun slot c -> if c > 0 then acc := (slot + t.min_index, c) :: !acc)
    t.counts;
  List.rev !acc

let memory_words t =
  (* record fields + header, plus the bucket array when allocated *)
  16 + Array.length t.counts

let clear t =
  t.counts <- [||];
  t.zero <- 0;
  t.count <- 0;
  t.fs.sum <- 0.;
  t.fs.vmin <- infinity;
  t.fs.vmax <- neg_infinity

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
      t.count (mean t) (percentile t 50.) (percentile t 90.) (percentile t 99.)
      t.fs.vmax
