(** Simulated message-passing network.

    A set of nodes identified by {!Address.t}, connected all-to-all. Each
    directed link delivers messages FIFO with latency drawn from a
    {!Latency.t} model; links may drop messages probabilistically, pairs of
    nodes may be partitioned, and whole nodes may be taken down (crash
    model: messages to or from a down node are silently lost and counted as
    dropped). Delivery is a scheduled event on the shared {!Avdb_sim.Engine.t},
    so all network behaviour is deterministic given the engine seed. *)

type 'a t
(** A network carrying payloads of type ['a]. *)

val create :
  engine:Avdb_sim.Engine.t ->
  ?latency:Latency.t ->
  ?drop_probability:float ->
  ?duplicate_probability:float ->
  ?reorder_probability:float ->
  ?bandwidth_bytes_per_sec:int ->
  unit ->
  'a t
(** [latency] defaults to {!Latency.default}; [drop_probability] (default
    [0.]) applies independently to every message. [duplicate_probability]
    (default [0.]) delivers an extra copy of the message one extra latency
    sample later; [reorder_probability] (default [0.]) exempts the message
    from the per-link FIFO guarantee and delays it by one extra latency
    sample, so later messages can overtake it. With
    [bandwidth_bytes_per_sec] set, each directed link also serialises
    messages: a message of [size] bytes occupies the link for
    [size / bandwidth] before its propagation delay starts, so bursts
    queue behind each other. [None] (default) models infinite bandwidth.
    The network draws its randomness from a stream split off the engine's
    root RNG at creation. *)

val engine : 'a t -> Avdb_sim.Engine.t
val stats : 'a t -> Stats.t

val add_node : 'a t -> Address.t -> (src:Address.t -> 'a -> unit) -> unit
(** Registers a node and its delivery handler. Raises [Invalid_argument] if
    the address is already registered. *)

val remove_node : 'a t -> Address.t -> unit

val nodes : 'a t -> Address.t list
(** Registered addresses, sorted. *)

val set_link_latency : 'a t -> Address.t -> Address.t -> Latency.t -> unit
(** Overrides the latency model for both directions between two nodes
    (e.g. a WAN link between distant sites); other links keep the
    network-wide default. *)

val link_latency : 'a t -> src:Address.t -> dst:Address.t -> Latency.t
(** The model governing one directed link. *)

val send : 'a t -> src:Address.t -> dst:Address.t -> ?size:int -> 'a -> unit
(** Queues a message for delivery. [size] (default 64 bytes) only feeds the
    byte counters. Sending to an unregistered address raises
    [Invalid_argument]; sending to or from a down node silently drops.
    Self-sends deliver with the same latency as any other link. *)

(** {2 Cross-shard routing (parallel engine)} *)

val set_remote_route :
  'a t -> (Address.t -> (at:Avdb_sim.Time.t -> src:Address.t -> 'a -> unit) option) -> unit
(** Installs the resolver for addresses owned by other shards. When
    {!send}'s destination is not registered locally, the resolver is
    consulted; [Some push] makes the send compute its full delivery
    instant sender-side (bandwidth, latency draw, FIFO clamp, loss /
    duplication / reordering — all against this shard's link state and
    RNG) and hand [(at, src, payload)] to [push], which is expected to
    enqueue it on the owning shard's mailbox. [None] falls through to the
    unknown-address error. Default: no remote addresses.

    Sender-side checks cover src-down, the local (mirrored) partition
    set and loss; dst-down is only checked at the delivery instant by
    the receiving shard (see {!deliver_remote}) — the destination's
    crash state is not observable cross-shard at send time. *)

val deliver_remote :
  'a t -> at:Avdb_sim.Time.t -> src:Address.t -> dst:Address.t -> 'a -> unit
(** Destination-shard half of a routed send: schedules the handler
    invocation at [at] on this network's engine, re-checking dst-down and
    partition state at that instant exactly like a locally sent message.
    Called while draining the shard's inbox at a barrier; [at] must not
    be in this engine's past (guaranteed by the lookahead window). *)

(** {2 Fault injection} *)

val set_down : 'a t -> Address.t -> bool -> unit
(** Marks a node crashed/recovered. In-flight messages to a node that
    crashes before delivery are lost. *)

val set_drop_probability : 'a t -> float -> unit
(** Changes the loss rate at runtime — scripted fault scenarios open and
    close lossy windows with this. Raises [Invalid_argument] outside
    [0,1]. *)

val set_duplicate_probability : 'a t -> float -> unit
val set_reorder_probability : 'a t -> float -> unit

val is_down : 'a t -> Address.t -> bool

val partition : 'a t -> Address.t -> Address.t -> unit
(** Cuts both directions between two nodes. *)

val heal : 'a t -> Address.t -> Address.t -> unit
val is_partitioned : 'a t -> Address.t -> Address.t -> bool
