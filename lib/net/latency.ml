open Avdb_sim

type t =
  | Constant of Time.t
  | Uniform of Time.t * Time.t
  | Gaussian of { mean : Time.t; stddev : Time.t }

let default = Constant (Time.of_ms 1.)

let sample t rng =
  match t with
  | Constant d -> d
  | Uniform (lo, hi) ->
      if Time.(hi < lo) then invalid_arg "Latency.sample: empty uniform range";
      if Time.equal lo hi then lo
      else Time.of_us (Rng.int_in rng (Time.to_us lo) (Time.to_us hi - 1))
  | Gaussian { mean; stddev } ->
      let x =
        Rng.gaussian rng ~mean:(float_of_int (Time.to_us mean))
          ~stddev:(float_of_int (Time.to_us stddev))
      in
      Time.of_us (Stdlib.max 0 (int_of_float x))

let lower_bound = function
  | Constant d -> d
  | Uniform (lo, _) -> lo
  | Gaussian _ -> Time.zero

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%a)" Time.pp d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%a,%a)" Time.pp lo Time.pp hi
  | Gaussian { mean; stddev } ->
      Format.fprintf ppf "gaussian(mean=%a,stddev=%a)" Time.pp mean Time.pp stddev
