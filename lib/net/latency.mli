(** Link latency models. *)

type t =
  | Constant of Avdb_sim.Time.t
  | Uniform of Avdb_sim.Time.t * Avdb_sim.Time.t
      (** inclusive lower bound, exclusive upper bound *)
  | Gaussian of { mean : Avdb_sim.Time.t; stddev : Avdb_sim.Time.t }
      (** truncated below at zero *)

val default : t
(** [Constant 1ms] — a LAN-ish default. *)

val sample : t -> Avdb_sim.Rng.t -> Avdb_sim.Time.t
(** Draws one latency. Raises [Invalid_argument] if a [Uniform] model has
    an empty range. *)

val lower_bound : t -> Avdb_sim.Time.t
(** The smallest latency the model can ever produce — the conservative
    lookahead the parallel engine may assume. [Gaussian] truncates at
    zero, so its bound is zero (and it cannot drive a parallel run). *)

val pp : Format.formatter -> t -> unit
