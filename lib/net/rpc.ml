open Avdb_sim

type ('req, 'resp, 'note) envelope =
  | Request of { id : int; span : Avdb_obs.Span.id option; body : 'req }
  | Response of { id : int; body : 'resp }
  | Notice of 'note

type error = Timeout

let pp_error ppf = function Timeout -> Format.pp_print_string ppf "timeout"

type retry_policy = {
  max_attempts : int;
  base_backoff : Time.t;
  backoff_multiplier : float;
  jitter : float;
}

let no_retry =
  { max_attempts = 1; base_backoff = Time.zero; backoff_multiplier = 2.; jitter = 0. }

let default_retry =
  { max_attempts = 4; base_backoff = Time.of_ms 25.; backoff_multiplier = 2.; jitter = 0.5 }

let validate_retry p =
  if p.max_attempts < 1 then invalid_arg "Rpc: retry max_attempts must be >= 1";
  if p.backoff_multiplier < 1. then invalid_arg "Rpc: backoff_multiplier must be >= 1";
  if p.jitter < 0. || p.jitter > 1. then invalid_arg "Rpc: jitter out of [0,1]"

type ('req, 'resp) pending = {
  continuation : ('resp, error) result -> unit;
  mutable timeout_handle : Engine.handle option;
  call_span : Avdb_obs.Span.id option;
}

(* Bounded at-most-once reply cache per served node: remembers replies so a
   retransmitted or network-duplicated request is answered from the cache
   instead of re-running the (possibly non-idempotent) handler. *)
let reply_cache_capacity = 8192

type ('req, 'resp, 'note) t = {
  net : ('req, 'resp, 'note) envelope Network.t;
  engine : Engine.t;
  (* Lazy so transports that never jitter a backoff leave the engine's RNG
     stream untouched (seeded runs stay bit-identical with retries off). *)
  rng : Rng.t Lazy.t;
  default_timeout : Time.t;
  request_size : 'req -> int;
  response_size : 'resp -> int;
  notice_size : 'note -> int;
  mutable next_id : int;
  pending : (int, ('req, 'resp) pending) Hashtbl.t;
  tracer : Avdb_obs.Tracer.t option;
  request_label : 'req -> string;
}

let flat _ = 64

let create ~engine ?latency ?drop_probability ?duplicate_probability ?reorder_probability
    ?bandwidth_bytes_per_sec ?(default_timeout = Time.of_ms 100.) ?(request_size = flat)
    ?(response_size = flat) ?(notice_size = flat) ?tracer
    ?(request_label = fun _ -> "request") () =
  let net =
    Network.create ~engine ?latency ?drop_probability ?duplicate_probability
      ?reorder_probability ?bandwidth_bytes_per_sec ()
  in
  {
    net;
    engine;
    rng = lazy (Rng.split (Engine.rng engine));
    default_timeout;
    request_size;
    response_size;
    notice_size;
    next_id = 0;
    pending = Hashtbl.create 64;
    tracer;
    request_label;
  }

let network t = t.net
let engine t = t.engine
let stats t = Network.stats t.net

(* Reply-cache key: request ids are only unique per calling transport
   (each shard's rpc numbers its own calls from 0 in parallel mode), so
   the cache is keyed by (caller, id) packed into one unboxed int. 38
   bits of id space outlasts any run by orders of magnitude. *)
let reply_key ~src ~id = (Address.to_int src lsl 38) lor id

let serve t addr ~handler ?(notice = fun ~src:_ _ -> ()) () =
  (* (src, id) -> None while the handler owes a reply, Some resp once
     replied. *)
  let replies : (int, 'resp option) Hashtbl.t = Hashtbl.create 64 in
  let order = Queue.create () in
  let send_response ~dst ~id body =
    Network.send t.net ~src:addr ~dst ~size:(t.response_size body) (Response { id; body })
  in
  let deliver ~src envelope =
    match envelope with
    | Request { id; span = ctx; body } -> (
        let rkey = reply_key ~src ~id in
        match Hashtbl.find_opt replies rkey with
        | Some (Some cached) ->
            (* Duplicate of an already-answered request: replay the reply. *)
            send_response ~dst:src ~id cached
        | Some None -> () (* duplicate while the first copy is still in the handler *)
        | None ->
            Hashtbl.replace replies rkey None;
            Queue.push rkey order;
            if Queue.length order > reply_cache_capacity then
              Hashtbl.remove replies (Queue.pop order);
            (* Server-side span, child of the caller's span carried in the
               envelope: covers handler start to the reply hitting the wire.
               A disabled tracer skips even the label concatenation. *)
            let serve_span =
              match t.tracer with
              | Some tracer when Avdb_obs.Tracer.enabled tracer ->
                  Some
                    (Avdb_obs.Tracer.start tracer ~at:(Engine.now t.engine)
                       ?parent:ctx ~site:(Address.to_int addr) ~category:"rpc"
                       ("serve:" ^ t.request_label body))
              | Some _ | None -> None
            in
            let finish_serve_span () =
              match (t.tracer, serve_span) with
              | Some tracer, Some sp ->
                  Avdb_obs.Tracer.finish tracer ~at:(Engine.now t.engine) sp
              | _ -> ()
            in
            let reply body =
              match Hashtbl.find_opt replies rkey with
              | Some None ->
                  Hashtbl.replace replies rkey (Some body);
                  finish_serve_span ();
                  send_response ~dst:src ~id body
              | Some (Some _) -> () (* double reply: ignored *)
              | None ->
                  (* evicted from the cache before the (very late) reply *)
                  finish_serve_span ();
                  send_response ~dst:src ~id body
            in
            handler ~src ~span:serve_span body ~reply)
    | Response { id; body } -> (
        match Hashtbl.find_opt t.pending id with
        | None -> () (* response after timeout or duplicate response: drop *)
        | Some p ->
            Hashtbl.remove t.pending id;
            Option.iter (Engine.cancel t.engine) p.timeout_handle;
            (match (t.tracer, p.call_span) with
            | Some tracer, Some sp ->
                Avdb_obs.Tracer.finish tracer ~at:(Engine.now t.engine) sp
            | _ -> ());
            p.continuation (Ok body))
    | Notice body -> notice ~src body
  in
  Network.add_node t.net addr deliver

(* Exponential backoff before attempt [n+1], scaled by a deterministic
   jitter factor in [1-j, 1+j] drawn from the transport's own stream. *)
let backoff_delay t policy ~attempt =
  let scale = policy.backoff_multiplier ** float_of_int (attempt - 1) in
  let factor =
    if policy.jitter = 0. then 1.
    else 1. +. (policy.jitter *. Rng.float_in (Lazy.force t.rng) (-1.) 1.)
  in
  let us = float_of_int (Time.to_us policy.base_backoff) *. scale *. factor in
  Time.of_us (int_of_float (Float.max 0. us))

let call t ~src ~dst ?timeout ?(retry = no_retry) ?span body continuation =
  validate_retry retry;
  let timeout = Option.value timeout ~default:t.default_timeout in
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  (* With a tracer, the envelope carries a per-call client span (child of
     [span]); without one, [span] itself propagates so servers can still
     parent onto the caller's context. *)
  let call_span =
    match t.tracer with
    | Some tracer when Avdb_obs.Tracer.enabled tracer ->
        let sp =
          Avdb_obs.Tracer.start tracer ~at:(Engine.now t.engine) ?parent:span
            ~site:(Address.to_int src) ~category:"rpc"
            ("call:" ^ t.request_label body)
        in
        Avdb_obs.Tracer.set_field tracer sp "dst" (Address.to_string dst);
        Some sp
    | Some _ | None -> None
  in
  let ctx = match call_span with Some _ -> call_span | None -> span in
  let p = { continuation; timeout_handle = None; call_span } in
  Hashtbl.replace t.pending id p;
  (* One logical call = one correspondence for the caller, regardless of
     retransmissions or outcome: failure is only ever detected by timeout
     now, so the request was genuinely put on the wire every time. *)
  Stats.add_correspondence (Network.stats t.net) src;
  let fail_span () =
    match (t.tracer, call_span) with
    | Some tracer, Some sp ->
        Avdb_obs.Tracer.warn tracer sp;
        Avdb_obs.Tracer.set_field tracer sp "error" "timeout";
        Avdb_obs.Tracer.finish tracer ~at:(Engine.now t.engine) sp
    | _ -> ()
  in
  let note_attempts n =
    match (t.tracer, call_span) with
    | Some tracer, Some sp ->
        Avdb_obs.Tracer.set_field tracer sp "attempts" (string_of_int n)
    | _ -> ()
  in
  let rec attempt n =
    Network.send t.net ~src ~dst ~size:(t.request_size body)
      (Request { id; span = ctx; body });
    p.timeout_handle <-
      Some
        (Engine.schedule t.engine ~delay:timeout (fun () ->
             if Hashtbl.mem t.pending id then
               if n >= retry.max_attempts then begin
                 Hashtbl.remove t.pending id;
                 if n > 1 then note_attempts n;
                 fail_span ();
                 p.continuation (Error Timeout)
               end
               else begin
                 Stats.add_retry (Network.stats t.net) src;
                 note_attempts (n + 1);
                 p.timeout_handle <-
                   Some
                     (Engine.schedule t.engine ~delay:(backoff_delay t retry ~attempt:n)
                        (fun () -> if Hashtbl.mem t.pending id then attempt (n + 1)))
               end))
  in
  attempt 1

let notify t ~src ~dst body =
  Network.send t.net ~src ~dst ~size:(t.notice_size body) (Notice body)
let pending_calls t = Hashtbl.length t.pending
