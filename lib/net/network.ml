open Avdb_sim

let src_log = Logs.Src.create "avdb.net" ~doc:"simulated network"

module Log = (val Logs.src_log src_log : Logs.LOG)

type 'a node = { handler : src:Address.t -> 'a -> unit; mutable down : bool }

module Pair = struct
  (* Unordered address pair, normalised so (a,b) = (b,a). *)
  type t = Address.t * Address.t

  let make a b = if Address.compare a b <= 0 then (a, b) else (b, a)

  let compare (a1, b1) (a2, b2) =
    match Address.compare a1 a2 with 0 -> Address.compare b1 b2 | c -> c
end

module Pair_set = Set.Make (Pair)

(* Directed links are keyed by one unboxed int instead of an address
   pair: the pair key cost two allocations on every send (the tuple plus
   its boxed hash path), which showed up in the delivery hot path. *)
let link_key src dst = (Address.to_int src lsl 24) lor Address.to_int dst

type 'a t = {
  engine : Engine.t;
  latency : Latency.t;
  mutable drop_probability : float;
  mutable duplicate_probability : float;
  mutable reorder_probability : float;
  bandwidth_bytes_per_sec : int option;
  rng : Rng.t;
  nodes : (Address.t, 'a node) Hashtbl.t;
  stats : Stats.t;
  (* FIFO guarantee: remember the last scheduled delivery instant per
     directed link and never deliver earlier than it. *)
  last_delivery : (int, Time.t) Hashtbl.t;
  (* With finite bandwidth: when the link finishes transmitting its
     current backlog; the next message starts serialising after that. *)
  link_busy_until : (int, Time.t) Hashtbl.t;
  link_overrides : (Pair.t, Latency.t) Hashtbl.t;
  mutable partitions : Pair_set.t;
  (* Parallel mode: addresses owned by other shards. The route returns
     the destination shard's inbox-push for an address it owns; delivery
     time is computed fully sender-side (this network owns all state for
     links leaving its shard), the receiving shard re-checks down and
     partition state at the delivery instant via [deliver_remote]. *)
  mutable remote_route : Address.t -> (at:Time.t -> src:Address.t -> 'a -> unit) option;
}

let check_probability what p =
  if p < 0. || p > 1. then invalid_arg (Printf.sprintf "Network: %s out of [0,1]" what);
  p

let create ~engine ?(latency = Latency.default) ?(drop_probability = 0.)
    ?(duplicate_probability = 0.) ?(reorder_probability = 0.) ?bandwidth_bytes_per_sec () =
  (match bandwidth_bytes_per_sec with
  | Some b when b <= 0 -> invalid_arg "Network.create: bandwidth must be positive"
  | Some _ | None -> ());
  {
    engine;
    latency;
    drop_probability = check_probability "drop_probability" drop_probability;
    duplicate_probability = check_probability "duplicate_probability" duplicate_probability;
    reorder_probability = check_probability "reorder_probability" reorder_probability;
    bandwidth_bytes_per_sec;
    rng = Rng.split (Engine.rng engine);
    nodes = Hashtbl.create 16;
    stats = Stats.create ();
    last_delivery = Hashtbl.create 64;
    link_busy_until = Hashtbl.create 64;
    link_overrides = Hashtbl.create 8;
    partitions = Pair_set.empty;
    remote_route = (fun _ -> None);
  }

let set_remote_route t route = t.remote_route <- route

let engine t = t.engine
let stats t = t.stats

let add_node t addr handler =
  if Hashtbl.mem t.nodes addr then
    invalid_arg (Format.asprintf "Network.add_node: %a already registered" Address.pp addr);
  Hashtbl.add t.nodes addr { handler; down = false }

let remove_node t addr = Hashtbl.remove t.nodes addr

let nodes t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.nodes [] |> List.sort Address.compare

let node t addr =
  match Hashtbl.find_opt t.nodes addr with
  | Some n -> n
  | None -> invalid_arg (Format.asprintf "Network: unknown node %a" Address.pp addr)

let set_down t addr down = (node t addr).down <- down

let set_drop_probability t p = t.drop_probability <- check_probability "drop_probability" p

let set_duplicate_probability t p =
  t.duplicate_probability <- check_probability "duplicate_probability" p

let set_reorder_probability t p =
  t.reorder_probability <- check_probability "reorder_probability" p

let set_link_latency t a b latency = Hashtbl.replace t.link_overrides (Pair.make a b) latency

let link_latency t ~src ~dst =
  Option.value ~default:t.latency (Hashtbl.find_opt t.link_overrides (Pair.make src dst))
let is_down t addr = (node t addr).down
let partition t a b = t.partitions <- Pair_set.add (Pair.make a b) t.partitions
let heal t a b = t.partitions <- Pair_set.remove (Pair.make a b) t.partitions
let is_partitioned t a b = Pair_set.mem (Pair.make a b) t.partitions

(* Delivery-instant computation, shared by the local and cross-shard
   paths: bandwidth serialisation, one latency sample, then either the
   reorder injection (bypasses the FIFO clamp) or the per-link FIFO
   clamp. Returns the primary delivery instant; the caller asks for the
   duplicate separately so the two paths stay draw-for-draw identical. *)
let delivery_time t ~src ~dst ~size ~latency_model =
  let now = Engine.now t.engine in
  (* Finite bandwidth: serialise behind the link's backlog first. *)
  let departure =
    match t.bandwidth_bytes_per_sec with
    | None -> now
    | Some bandwidth ->
        let key = link_key src dst in
        let start =
          match Hashtbl.find_opt t.link_busy_until key with
          | Some busy -> Time.max now busy
          | None -> now
        in
        let transmit_us = size * 1_000_000 / bandwidth in
        let finished = Time.add start (Time.of_us (Stdlib.max 1 transmit_us)) in
        Hashtbl.replace t.link_busy_until key finished;
        finished
  in
  let natural = Time.add departure (Latency.sample latency_model t.rng) in
  (* The [> 0.] guards keep disabled injections from consuming RNG draws,
     so seeded runs are bit-identical with the features off. *)
  if t.reorder_probability > 0. && Rng.bernoulli t.rng t.reorder_probability then begin
    (* Reordering injection: delay this message by one extra latency
       sample and bypass the FIFO clamp, so messages sent after it may
       overtake it on the same link. *)
    Stats.on_reordered t.stats src;
    Time.add natural (Latency.sample latency_model t.rng)
  end
  else begin
    let key = link_key src dst in
    let clamped =
      match Hashtbl.find_opt t.last_delivery key with
      | Some last -> Time.max natural last
      | None -> natural
    in
    Hashtbl.replace t.last_delivery key clamped;
    clamped
  end

let send_local t ~src ~dst dst_node ~size payload =
  Stats.on_sent t.stats src ~bytes:size;
  if (node t src).down || dst_node.down || is_partitioned t src dst then begin
    Log.debug (fun m -> m "drop %a->%a (down/partition)" Address.pp src Address.pp dst);
    Stats.on_dropped t.stats src
  end
  else if Rng.bernoulli t.rng t.drop_probability then begin
    Log.debug (fun m -> m "drop %a->%a (loss)" Address.pp src Address.pp dst);
    Stats.on_dropped t.stats src
  end
  else begin
    let latency_model = link_latency t ~src ~dst in
    let deliver_at = delivery_time t ~src ~dst ~size ~latency_model in
    (* One closure shared by the primary delivery and the duplicate: the
       event reads its instant from the engine clock, so nothing per-copy
       needs capturing. *)
    let event () =
      (* Crash between send and delivery loses the message. *)
      if dst_node.down || is_partitioned t src dst then Stats.on_dropped t.stats src
      else begin
        Stats.on_received t.stats dst;
        dst_node.handler ~src payload
      end
    in
    ignore (Engine.schedule_at t.engine ~at:deliver_at event);
    if t.duplicate_probability > 0. && Rng.bernoulli t.rng t.duplicate_probability then begin
      (* Duplication injection: a second copy arrives one extra latency
         sample later, outside the FIFO clamp. *)
      Stats.on_duplicated t.stats src;
      ignore
        (Engine.schedule_at t.engine
           ~at:(Time.add deliver_at (Latency.sample latency_model t.rng))
           event)
    end
  end

(* Cross-shard send: everything the sender's shard owns — src down state,
   the (mirrored) partition set, loss/duplication/reordering draws,
   bandwidth and FIFO state for the outgoing link — is applied here, and
   the fully computed delivery instant travels with the message. The one
   check the sender cannot make is whether [dst] is down *at send time*
   (that state lives in the destination shard); the destination re-checks
   down and partition state at the delivery instant, which is when the
   sequential engine makes its final check too. *)
let send_remote t ~src ~dst ~size payload push =
  Stats.on_sent t.stats src ~bytes:size;
  if (node t src).down || is_partitioned t src dst then begin
    Log.debug (fun m -> m "drop %a->%a (down/partition)" Address.pp src Address.pp dst);
    Stats.on_dropped t.stats src
  end
  else if Rng.bernoulli t.rng t.drop_probability then begin
    Log.debug (fun m -> m "drop %a->%a (loss)" Address.pp src Address.pp dst);
    Stats.on_dropped t.stats src
  end
  else begin
    let latency_model = link_latency t ~src ~dst in
    let deliver_at = delivery_time t ~src ~dst ~size ~latency_model in
    push ~at:deliver_at ~src payload;
    if t.duplicate_probability > 0. && Rng.bernoulli t.rng t.duplicate_probability then begin
      Stats.on_duplicated t.stats src;
      push ~at:(Time.add deliver_at (Latency.sample latency_model t.rng)) ~src payload
    end
  end

let send t ~src ~dst ?(size = 64) payload =
  match Hashtbl.find_opt t.nodes dst with
  | Some dst_node -> send_local t ~src ~dst dst_node ~size payload
  | None -> (
      match t.remote_route dst with
      | Some push -> send_remote t ~src ~dst ~size payload push
      | None -> invalid_arg (Format.asprintf "Network: unknown node %a" Address.pp dst))

(* Destination side of a cross-shard message: called while draining the
   shard's inbox at a barrier, with [at] strictly inside a future window,
   so scheduling it can never be in this engine's past. *)
let deliver_remote t ~at ~src ~dst payload =
  let dst_node = node t dst in
  ignore
    (Engine.schedule_at t.engine ~at (fun () ->
         if dst_node.down || is_partitioned t src dst then Stats.on_dropped t.stats src
         else begin
           Stats.on_received t.stats dst;
           dst_node.handler ~src payload
         end))
