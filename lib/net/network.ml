open Avdb_sim

let src_log = Logs.Src.create "avdb.net" ~doc:"simulated network"

module Log = (val Logs.src_log src_log : Logs.LOG)

type 'a node = { handler : src:Address.t -> 'a -> unit; mutable down : bool }

module Pair = struct
  (* Unordered address pair, normalised so (a,b) = (b,a). *)
  type t = Address.t * Address.t

  let make a b = if Address.compare a b <= 0 then (a, b) else (b, a)

  let compare (a1, b1) (a2, b2) =
    match Address.compare a1 a2 with 0 -> Address.compare b1 b2 | c -> c
end

module Pair_set = Set.Make (Pair)

type 'a t = {
  engine : Engine.t;
  latency : Latency.t;
  mutable drop_probability : float;
  mutable duplicate_probability : float;
  mutable reorder_probability : float;
  bandwidth_bytes_per_sec : int option;
  rng : Rng.t;
  nodes : (Address.t, 'a node) Hashtbl.t;
  stats : Stats.t;
  (* FIFO guarantee: remember the last scheduled delivery instant per
     directed link and never deliver earlier than it. *)
  last_delivery : (Address.t * Address.t, Time.t) Hashtbl.t;
  (* With finite bandwidth: when the link finishes transmitting its
     current backlog; the next message starts serialising after that. *)
  link_busy_until : (Address.t * Address.t, Time.t) Hashtbl.t;
  link_overrides : (Pair.t, Latency.t) Hashtbl.t;
  mutable partitions : Pair_set.t;
}

let check_probability what p =
  if p < 0. || p > 1. then invalid_arg (Printf.sprintf "Network: %s out of [0,1]" what);
  p

let create ~engine ?(latency = Latency.default) ?(drop_probability = 0.)
    ?(duplicate_probability = 0.) ?(reorder_probability = 0.) ?bandwidth_bytes_per_sec () =
  (match bandwidth_bytes_per_sec with
  | Some b when b <= 0 -> invalid_arg "Network.create: bandwidth must be positive"
  | Some _ | None -> ());
  {
    engine;
    latency;
    drop_probability = check_probability "drop_probability" drop_probability;
    duplicate_probability = check_probability "duplicate_probability" duplicate_probability;
    reorder_probability = check_probability "reorder_probability" reorder_probability;
    bandwidth_bytes_per_sec;
    rng = Rng.split (Engine.rng engine);
    nodes = Hashtbl.create 16;
    stats = Stats.create ();
    last_delivery = Hashtbl.create 64;
    link_busy_until = Hashtbl.create 64;
    link_overrides = Hashtbl.create 8;
    partitions = Pair_set.empty;
  }

let engine t = t.engine
let stats t = t.stats

let add_node t addr handler =
  if Hashtbl.mem t.nodes addr then
    invalid_arg (Format.asprintf "Network.add_node: %a already registered" Address.pp addr);
  Hashtbl.add t.nodes addr { handler; down = false }

let remove_node t addr = Hashtbl.remove t.nodes addr

let nodes t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.nodes [] |> List.sort Address.compare

let node t addr =
  match Hashtbl.find_opt t.nodes addr with
  | Some n -> n
  | None -> invalid_arg (Format.asprintf "Network: unknown node %a" Address.pp addr)

let set_down t addr down = (node t addr).down <- down

let set_drop_probability t p = t.drop_probability <- check_probability "drop_probability" p

let set_duplicate_probability t p =
  t.duplicate_probability <- check_probability "duplicate_probability" p

let set_reorder_probability t p =
  t.reorder_probability <- check_probability "reorder_probability" p

let set_link_latency t a b latency = Hashtbl.replace t.link_overrides (Pair.make a b) latency

let link_latency t ~src ~dst =
  Option.value ~default:t.latency (Hashtbl.find_opt t.link_overrides (Pair.make src dst))
let is_down t addr = (node t addr).down
let partition t a b = t.partitions <- Pair_set.add (Pair.make a b) t.partitions
let heal t a b = t.partitions <- Pair_set.remove (Pair.make a b) t.partitions
let is_partitioned t a b = Pair_set.mem (Pair.make a b) t.partitions

let send t ~src ~dst ?(size = 64) payload =
  let dst_node = node t dst in
  let src_down = (node t src).down in
  Stats.on_sent t.stats src ~bytes:size;
  if src_down || dst_node.down || is_partitioned t src dst then begin
    Log.debug (fun m -> m "drop %a->%a (down/partition)" Address.pp src Address.pp dst);
    Stats.on_dropped t.stats src
  end
  else if Rng.bernoulli t.rng t.drop_probability then begin
    Log.debug (fun m -> m "drop %a->%a (loss)" Address.pp src Address.pp dst);
    Stats.on_dropped t.stats src
  end
  else begin
    let now = Engine.now t.engine in
    (* Finite bandwidth: serialise behind the link's backlog first. *)
    let departure =
      match t.bandwidth_bytes_per_sec with
      | None -> now
      | Some bandwidth ->
          let start =
            match Hashtbl.find_opt t.link_busy_until (src, dst) with
            | Some busy -> Time.max now busy
            | None -> now
          in
          let transmit_us = size * 1_000_000 / bandwidth in
          let finished = Time.add start (Time.of_us (Stdlib.max 1 transmit_us)) in
          Hashtbl.replace t.link_busy_until (src, dst) finished;
          finished
    in
    let latency_model = link_latency t ~src ~dst in
    let natural = Time.add departure (Latency.sample latency_model t.rng) in
    let deliver payload_at =
      ignore
        (Engine.schedule_at t.engine ~at:payload_at (fun () ->
             (* Crash between send and delivery loses the message. *)
             if dst_node.down || is_partitioned t src dst then Stats.on_dropped t.stats src
             else begin
               Stats.on_received t.stats dst;
               dst_node.handler ~src payload
             end))
    in
    (* The [> 0.] guards keep disabled injections from consuming RNG draws,
       so seeded runs are bit-identical with the features off. *)
    let deliver_at =
      if t.reorder_probability > 0. && Rng.bernoulli t.rng t.reorder_probability then begin
        (* Reordering injection: delay this message by one extra latency
           sample and bypass the FIFO clamp, so messages sent after it may
           overtake it on the same link. *)
        Stats.on_reordered t.stats src;
        Time.add natural (Latency.sample latency_model t.rng)
      end
      else begin
        let clamped =
          match Hashtbl.find_opt t.last_delivery (src, dst) with
          | Some last -> Time.max natural last
          | None -> natural
        in
        Hashtbl.replace t.last_delivery (src, dst) clamped;
        clamped
      end
    in
    deliver deliver_at;
    if t.duplicate_probability > 0. && Rng.bernoulli t.rng t.duplicate_probability then begin
      (* Duplication injection: a second copy arrives one extra latency
         sample later, outside the FIFO clamp. *)
      Stats.on_duplicated t.stats src;
      deliver (Time.add deliver_at (Latency.sample latency_model t.rng))
    end
  end
