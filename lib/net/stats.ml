type site = {
  mutable sent : int;
  mutable received : int;
  mutable bytes_sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable retries : int;
  mutable correspondences : int;
}

type t = { per_site : (Address.t, site) Hashtbl.t }

let create () = { per_site = Hashtbl.create 16 }

let site t addr =
  match Hashtbl.find_opt t.per_site addr with
  | Some s -> s
  | None ->
      let s =
        {
          sent = 0;
          received = 0;
          bytes_sent = 0;
          dropped = 0;
          duplicated = 0;
          reordered = 0;
          retries = 0;
          correspondences = 0;
        }
      in
      Hashtbl.add t.per_site addr s;
      s

let on_sent t addr ~bytes =
  let s = site t addr in
  s.sent <- s.sent + 1;
  s.bytes_sent <- s.bytes_sent + bytes

let on_received t addr =
  let s = site t addr in
  s.received <- s.received + 1

let on_dropped t addr =
  let s = site t addr in
  s.dropped <- s.dropped + 1

let on_duplicated t addr =
  let s = site t addr in
  s.duplicated <- s.duplicated + 1

let on_reordered t addr =
  let s = site t addr in
  s.reordered <- s.reordered + 1

let add_retry t addr =
  let s = site t addr in
  s.retries <- s.retries + 1

let add_correspondence t addr =
  let s = site t addr in
  s.correspondences <- s.correspondences + 1

let fold f t init = Hashtbl.fold (fun _ s acc -> f acc s) t.per_site init
let total_sent t = fold (fun acc s -> acc + s.sent) t 0
let total_received t = fold (fun acc s -> acc + s.received) t 0
let total_dropped t = fold (fun acc s -> acc + s.dropped) t 0
let total_correspondences t = fold (fun acc s -> acc + s.correspondences) t 0
let total_duplicated t = fold (fun acc s -> acc + s.duplicated) t 0
let total_reordered t = fold (fun acc s -> acc + s.reordered) t 0
let total_retries t = fold (fun acc s -> acc + s.retries) t 0
let message_pair_correspondences t = float_of_int (total_sent t) /. 2.

let sites t =
  Hashtbl.fold (fun addr s acc -> (addr, s) :: acc) t.per_site []
  |> List.sort (fun (a, _) (b, _) -> Address.compare a b)

let reset t = Hashtbl.reset t.per_site

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (addr, s) ->
      Format.fprintf ppf "%a: sent=%d recv=%d bytes=%d dropped=%d corr=%d@ " Address.pp addr
        s.sent s.received s.bytes_sent s.dropped s.correspondences)
    (sites t);
  Format.fprintf ppf "total: sent=%d recv=%d dropped=%d corr=%d@]" (total_sent t)
    (total_received t) (total_dropped t) (total_correspondences t)
