(** Per-site and global network accounting.

    The paper's metric is the {e number of correspondences}: one
    correspondence is a request/response pair, i.e. two messages (§4,
    "2 messages are counted as 1 correspondence"). Message counts are
    recorded here by the network; correspondence counts are recorded by the
    RPC layer when a call completes (or times out after being sent) and are
    attributed to the {e calling} site. *)

type site = {
  mutable sent : int;
  mutable received : int;
  mutable bytes_sent : int;
  mutable dropped : int;  (** messages lost to drops, partitions or down nodes *)
  mutable duplicated : int;  (** extra copies injected by duplication *)
  mutable reordered : int;  (** messages exempted from FIFO by reordering injection *)
  mutable retries : int;  (** RPC retransmissions after per-attempt timeouts *)
  mutable correspondences : int;
}

type t

val create : unit -> t

val site : t -> Address.t -> site
(** The mutable per-site record, created on first access. *)

val on_sent : t -> Address.t -> bytes:int -> unit
val on_received : t -> Address.t -> unit
val on_dropped : t -> Address.t -> unit
val on_duplicated : t -> Address.t -> unit
val on_reordered : t -> Address.t -> unit
val add_retry : t -> Address.t -> unit
val add_correspondence : t -> Address.t -> unit

val total_sent : t -> int
val total_received : t -> int
val total_dropped : t -> int
val total_correspondences : t -> int

val total_duplicated : t -> int
(** Injected duplicate deliveries. When nonzero,
    [total_received + total_dropped] exceeds [total_sent] by up to this
    amount (each duplicate is a received message that was never "sent"
    by a site). *)

val total_reordered : t -> int
val total_retries : t -> int

val message_pair_correspondences : t -> float
(** [total_sent / 2.] — the paper's counting rule applied to raw message
    traffic; includes one-way (non-RPC) messages. *)

val sites : t -> (Address.t * site) list
(** Sorted by address. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
