(** Request/response messaging over {!Network}, with timeouts, retries and
    at-most-once execution.

    Wraps a network whose payload is the private {!type-envelope}: callers
    see typed requests ['req], responses ['resp] and one-way notices
    ['note]. Every call counts one {e correspondence} against the calling
    site, matching the paper's metric of request/response pairs.

    Failure detection is {e timeout-only}: the transport never consults
    global knowledge about whether a peer is down or partitioned, so a call
    to a dead peer fails exactly like a call over a lossy link — with
    [Timeout] after the deadline (times the configured attempts). A server
    keeps a bounded reply cache keyed by request id, so retransmitted or
    network-duplicated requests are answered from the cache instead of
    re-running the handler: handlers observe at-most-once execution even
    for non-idempotent operations. *)

type ('req, 'resp, 'note) envelope

type ('req, 'resp, 'note) t

type error = Timeout  (** no response within the deadline(s) *)

val pp_error : Format.formatter -> error -> unit

type retry_policy = {
  max_attempts : int;  (** total send attempts, >= 1; 1 = no retry *)
  base_backoff : Avdb_sim.Time.t;  (** wait before the 2nd attempt *)
  backoff_multiplier : float;  (** >= 1; backoff grows by this per attempt *)
  jitter : float;
      (** in [0,1]: each backoff is scaled by a factor uniform in
          [1-jitter, 1+jitter], drawn deterministically from the
          transport's own RNG stream *)
}

val no_retry : retry_policy
(** Single attempt — the classic fire-and-wait call. *)

val default_retry : retry_policy
(** 4 attempts, 25 ms base backoff, doubling, 0.5 jitter. *)

val create :
  engine:Avdb_sim.Engine.t ->
  ?latency:Latency.t ->
  ?drop_probability:float ->
  ?duplicate_probability:float ->
  ?reorder_probability:float ->
  ?bandwidth_bytes_per_sec:int ->
  ?default_timeout:Avdb_sim.Time.t ->
  ?request_size:('req -> int) ->
  ?response_size:('resp -> int) ->
  ?notice_size:('note -> int) ->
  ?tracer:Avdb_obs.Tracer.t ->
  ?request_label:('req -> string) ->
  unit ->
  ('req, 'resp, 'note) t
(** Builds the underlying network too. [default_timeout] defaults to
    100 ms of virtual time. The three [*_size] estimators feed the byte
    counters and the optional bandwidth model; each defaults to a flat
    64 bytes. The fault-injection probabilities are forwarded to
    {!Network.create}.

    With a [tracer], every {!call} opens a client span ["call:<label>"]
    (finished when the response arrives, or warned and finished on final
    timeout) and every first delivery of a request opens a server span
    ["serve:<label>"] that is a {e child of the caller's span across the
    wire} — the envelope carries the span id. [request_label] names those
    spans per request (default ["request"]). *)

val network : ('req, 'resp, 'note) t -> ('req, 'resp, 'note) envelope Network.t
val engine : ('req, 'resp, 'note) t -> Avdb_sim.Engine.t
val stats : ('req, 'resp, 'note) t -> Stats.t

val serve :
  ('req, 'resp, 'note) t ->
  Address.t ->
  handler:
    (src:Address.t ->
    span:Avdb_obs.Span.id option ->
    'req ->
    reply:('resp -> unit) ->
    unit) ->
  ?notice:(src:Address.t -> 'note -> unit) ->
  unit ->
  unit
(** Registers a node. [handler] receives each distinct request once, with a
    [reply] function that may be invoked immediately or from a later event
    (at most once; later invocations are ignored). Duplicates of an
    already-answered request are answered from the reply cache without
    re-invoking [handler]. [span] is the server-side span for this request
    (present only when the transport has a tracer); handlers may parent
    their own spans onto it. It is finished when [reply]'s response hits
    the wire. [notice] handles one-way messages; the default drops them. *)

val call :
  ('req, 'resp, 'note) t ->
  src:Address.t ->
  dst:Address.t ->
  ?timeout:Avdb_sim.Time.t ->
  ?retry:retry_policy ->
  ?span:Avdb_obs.Span.id ->
  'req ->
  (('resp, error) result -> unit) ->
  unit
(** Issues a request; the continuation runs exactly once, either with the
    response or with [Error Timeout] once every attempt's deadline passed.
    [span] is the caller's enclosing span: the per-call client span (and,
    across the wire, the server span) becomes its child.
    Retransmissions reuse the same request id, so a server that already
    executed the request replays its cached reply rather than executing it
    again. A response arriving during a backoff pause completes the call
    and cancels the pending retransmission. Counts exactly one
    correspondence for [src] per call (never per attempt). *)

val notify : ('req, 'resp, 'note) t -> src:Address.t -> dst:Address.t -> 'note -> unit
(** Fire-and-forget one-way message (half a correspondence in the paper's
    message-pair accounting; not counted as a correspondence here). *)

val pending_calls : ('req, 'resp, 'note) t -> int
(** Number of calls awaiting a response, retransmission or timeout
    (diagnostic). *)
