open Avdb_sim

type id = int

type status = Ok | Warn

let status_name = function Ok -> "ok" | Warn -> "warn"

type t = {
  id : id;
  parent : id option;
  site : int option;
  category : string;
  name : string;
  start : Time.t;
  mutable stop : Time.t option;
  mutable status : status;
  mutable rev_fields : (string * string) list;
}

let is_finished s = Option.is_some s.stop

let duration s = Option.map (fun stop -> Time.diff stop s.start) s.stop

let fields s = List.rev s.rev_fields

let pp ppf s =
  Format.fprintf ppf "#%d%s %s/%s [%a..%s]%s" s.id
    (match s.parent with Some p -> Printf.sprintf "<-#%d" p | None -> "")
    s.category s.name Time.pp s.start
    (match s.stop with Some e -> Time.to_string e | None -> "open")
    (match s.status with Ok -> "" | Warn -> " WARN")
