open Avdb_sim

type id = int

type status = Ok | Warn

let status_name = function Ok -> "ok" | Warn -> "warn"

(* Field values stay unrendered until export: integer fields on the
   update hot path would otherwise pay a [string_of_int] per attach —
   measured at ~13% of Delay-Update throughput — even for spans that
   sampling is about to discard. *)
type value = Str of string | Int of int

let value_string = function Str s -> s | Int n -> string_of_int n

type t = {
  id : id;
  parent : id option;
  site : int option;
  category : string;
  name : string;
  start : Time.t;
  mutable stop : Time.t option;
  mutable status : status;
  mutable rev_fields : (string * value) list;
}

let is_finished s = Option.is_some s.stop

let duration s = Option.map (fun stop -> Time.diff stop s.start) s.stop

let fields s = List.rev_map (fun (k, v) -> (k, value_string v)) s.rev_fields

let pp ppf s =
  Format.fprintf ppf "#%d%s %s/%s [%a..%s]%s" s.id
    (match s.parent with Some p -> Printf.sprintf "<-#%d" p | None -> "")
    s.category s.name Time.pp s.start
    (match s.stop with Some e -> Time.to_string e | None -> "open")
    (match s.status with Ok -> "" | Warn -> " WARN")
