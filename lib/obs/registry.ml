type labels = (string * string) list

type counter = int ref

type histogram = Avdb_metrics.Histogram.t

type source =
  | Src_counter of counter
  | Src_gauge of (unit -> float)
  | Src_histogram of histogram

type metric = { name : string; labels : labels; source : source }

type sample = {
  at : Avdb_sim.Time.t;
  name : string;
  labels : labels;
  value : float;
}

type t = {
  by_key : (string * labels, metric) Hashtbl.t;
  mutable rev_metrics : metric list;  (* registration order, newest first *)
  mutable rev_samples : sample list;
  mutable snapshots : int;
}

let create () =
  { by_key = Hashtbl.create 64; rev_metrics = []; rev_samples = []; snapshots = 0 }

let series_key ~name ~labels =
  match labels with
  | [] -> name
  | _ ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let register t name labels source =
  let metric = { name; labels; source } in
  Hashtbl.replace t.by_key (name, labels) metric;
  t.rev_metrics <- metric :: t.rev_metrics;
  metric

let counter t ?(labels = []) name =
  match Hashtbl.find_opt t.by_key (name, labels) with
  | Some { source = Src_counter c; _ } -> c
  | Some _ ->
      invalid_arg
        ("Registry.counter: " ^ series_key ~name ~labels ^ " registered as another kind")
  | None ->
      let c = ref 0 in
      ignore (register t name labels (Src_counter c));
      c

let inc c by = c := !c + by
let counter_value c = !c

let gauge t ?(labels = []) name f =
  if Hashtbl.mem t.by_key (name, labels) then
    invalid_arg ("Registry.gauge: duplicate " ^ series_key ~name ~labels)
  else ignore (register t name labels (Src_gauge f))

let histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.by_key (name, labels) with
  | Some { source = Src_histogram h; _ } -> h
  | Some _ ->
      invalid_arg
        ("Registry.histogram: " ^ series_key ~name ~labels ^ " registered as another kind")
  | None ->
      let h = Avdb_metrics.Histogram.create () in
      ignore (register t name labels (Src_histogram h));
      h

let observe h x = Avdb_metrics.Histogram.add h x

let snapshot t ~at =
  t.snapshots <- t.snapshots + 1;
  List.iter
    (fun (m : metric) ->
      let add name value = t.rev_samples <- { at; name; labels = m.labels; value } :: t.rev_samples in
      match m.source with
      | Src_counter c -> add m.name (float_of_int !c)
      | Src_gauge f -> add m.name (f ())
      | Src_histogram h ->
          let open Avdb_metrics in
          let count = Histogram.count h in
          add (m.name ^ ".count") (float_of_int count);
          add (m.name ^ ".mean") (if count = 0 then 0. else Histogram.mean h);
          add (m.name ^ ".p99") (if count = 0 then 0. else Histogram.percentile h 99.))
    (List.rev t.rev_metrics)

let snapshot_count t = t.snapshots
let samples t = List.rev t.rev_samples
