type labels = (string * string) list

type counter = int ref

type histogram = Avdb_metrics.Sketch.t

(* An owned sketch is fed through [observe]; an attached one belongs to
   someone else (a per-site metrics record, or a merge of many) and is
   re-fetched at every snapshot. *)
type sketch_source = Owned of histogram | Attached of (unit -> histogram)

type source =
  | Src_counter of counter
  | Src_gauge of (unit -> float)
  | Src_sketch of sketch_source

(* One exported series (metric identity x suffix), retained as a bounded
   ring: while under the retention cap the arrays grow by doubling and
   [start] stays 0; at the cap the oldest sample is overwritten. This is
   what keeps a 1000-site run's registry memory flat instead of
   O(series x snapshots). *)
type ring = {
  r_name : string;
  r_labels : labels;
  mutable times : Avdb_sim.Time.t array;
  mutable values : float array;
  mutable start : int; (* index of the oldest retained sample *)
  mutable len : int;
}

type metric = {
  name : string;
  labels : labels;
  source : source;
  mutable rings : ring array; (* [||] until the first snapshot *)
}

type sample = {
  at : Avdb_sim.Time.t;
  name : string;
  labels : labels;
  value : float;
}

type t = {
  retention : int;
  by_key : (string * labels, metric) Hashtbl.t;
  mutable rev_metrics : metric list;  (* registration order, newest first *)
  mutable rev_rings : ring list;  (* emission order, newest first *)
  mutable snapshots : int;
}

let create ?(retention = 512) () =
  {
    retention = Stdlib.max 1 retention;
    by_key = Hashtbl.create 64;
    rev_metrics = [];
    rev_rings = [];
    snapshots = 0;
  }

let retention t = t.retention

let series_key ~name ~labels =
  match labels with
  | [] -> name
  | _ ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let register t name labels source =
  let metric = { name; labels; source; rings = [||] } in
  Hashtbl.replace t.by_key (name, labels) metric;
  t.rev_metrics <- metric :: t.rev_metrics;
  metric

let counter t ?(labels = []) name =
  match Hashtbl.find_opt t.by_key (name, labels) with
  | Some { source = Src_counter c; _ } -> c
  | Some _ ->
      invalid_arg
        ("Registry.counter: " ^ series_key ~name ~labels ^ " registered as another kind")
  | None ->
      let c = ref 0 in
      ignore (register t name labels (Src_counter c));
      c

let inc c by = c := !c + by
let counter_value c = !c

let gauge t ?(labels = []) name f =
  if Hashtbl.mem t.by_key (name, labels) then
    invalid_arg ("Registry.gauge: duplicate " ^ series_key ~name ~labels)
  else ignore (register t name labels (Src_gauge f))

let histogram t ?(labels = []) name =
  match Hashtbl.find_opt t.by_key (name, labels) with
  | Some { source = Src_sketch (Owned h); _ } -> h
  | Some _ ->
      invalid_arg
        ("Registry.histogram: " ^ series_key ~name ~labels ^ " registered as another kind")
  | None ->
      let h = Avdb_metrics.Sketch.create () in
      ignore (register t name labels (Src_sketch (Owned h)));
      h

let attach_sketch t ?(labels = []) name f =
  if Hashtbl.mem t.by_key (name, labels) then
    invalid_arg ("Registry.attach_sketch: duplicate " ^ series_key ~name ~labels)
  else ignore (register t name labels (Src_sketch (Attached f)))

let observe h x = Avdb_metrics.Sketch.add h x

let no_time = Avdb_sim.Time.of_us 0

let new_ring t name labels =
  let r =
    { r_name = name; r_labels = labels; times = [||]; values = [||]; start = 0; len = 0 }
  in
  t.rev_rings <- r :: t.rev_rings;
  r

let sketch_suffixes = [| ".count"; ".mean"; ".p50"; ".p90"; ".p99"; ".p999" |]

let ensure_rings t (m : metric) =
  if Array.length m.rings = 0 then
    m.rings <-
      (match m.source with
      | Src_counter _ | Src_gauge _ -> [| new_ring t m.name m.labels |]
      | Src_sketch _ ->
          Array.map (fun suffix -> new_ring t (m.name ^ suffix) m.labels) sketch_suffixes)

let push t r ~at v =
  let cap = Array.length r.times in
  if r.len = cap && cap < t.retention then begin
    (* still filling: grow by doubling toward the cap; start is 0 here *)
    let n = Stdlib.min t.retention (Stdlib.max 8 (2 * cap)) in
    let times = Array.make n no_time and values = Array.make n 0. in
    Array.blit r.times 0 times 0 r.len;
    Array.blit r.values 0 values 0 r.len;
    r.times <- times;
    r.values <- values
  end;
  let cap = Array.length r.times in
  if r.len < cap then begin
    r.times.(r.len) <- at;
    r.values.(r.len) <- v;
    r.len <- r.len + 1
  end
  else begin
    (* saturated: the oldest sample falls off the back *)
    r.times.(r.start) <- at;
    r.values.(r.start) <- v;
    r.start <- (r.start + 1) mod cap
  end

let snapshot t ~at =
  t.snapshots <- t.snapshots + 1;
  List.iter
    (fun (m : metric) ->
      ensure_rings t m;
      match m.source with
      | Src_counter c -> push t m.rings.(0) ~at (float_of_int !c)
      | Src_gauge f -> push t m.rings.(0) ~at (f ())
      | Src_sketch s ->
          let open Avdb_metrics in
          let sk = match s with Owned sk -> sk | Attached f -> f () in
          let count = Sketch.count sk in
          let p q = if count = 0 then 0. else Sketch.percentile sk q in
          push t m.rings.(0) ~at (float_of_int count);
          push t m.rings.(1) ~at (if count = 0 then 0. else Sketch.mean sk);
          push t m.rings.(2) ~at (p 50.);
          push t m.rings.(3) ~at (p 90.);
          push t m.rings.(4) ~at (p 99.);
          push t m.rings.(5) ~at (p 99.9))
    (List.rev t.rev_metrics)

let snapshot_count t = t.snapshots

let samples t =
  let rows =
    List.concat_map
      (fun r ->
        let cap = Stdlib.max 1 (Array.length r.times) in
        List.init r.len (fun k ->
            let i = (r.start + k) mod cap in
            { at = r.times.(i); name = r.r_name; labels = r.r_labels; value = r.values.(i) }))
      (List.rev t.rev_rings)
  in
  (* stable: emission order is preserved within one snapshot instant *)
  List.stable_sort (fun a b -> Avdb_sim.Time.compare a.at b.at) rows

let n_series t = List.length t.rev_rings

(* Per-shard registries are single-writer; after the parallel run joins,
   their series merge by snapshot instant — snapshots are taken at the
   same virtual times in every shard, so the stable sort interleaves the
   shards' samples deterministically (list order within an instant). *)
let merged_samples registries =
  List.stable_sort
    (fun a b -> Avdb_sim.Time.compare a.at b.at)
    (List.concat_map samples registries)

let footprint_words t =
  let ring_words acc r =
    (* ring record + two array headers + their elements *)
    acc + 10 + Array.length r.times + Array.length r.values
  in
  let metric_words acc (m : metric) =
    let own =
      match m.source with
      | Src_sketch (Owned h) -> Avdb_metrics.Sketch.memory_words h
      | _ -> 0
    in
    acc + 8 + own
  in
  List.fold_left ring_words (List.fold_left metric_words 0 t.rev_metrics) t.rev_rings
