(** Span collector with deterministic head sampling and tail retention.

    Components {!start} a span when an operation begins, optionally attach
    string fields, and {!finish} it when the operation completes; spans that
    never finish (a crashed incarnation's continuations are fenced) stay
    open and are exported as such. Span ids are allocated densely in
    creation order, which is engine execution order, so a seeded run always
    yields the same tree.

    {b Sampling.} With [sample_rate < 1], each root span (no parent) is
    kept or sampled out by a pure hash of [(seed, root ordinal)] — the
    same seed always keeps the same trees — and descendants inherit the
    root's verdict. Sampled-out spans are not exported, but the tail can
    overrule the head: a span that is {!warn}ed, or whose duration at
    {!finish} reaches the [slow] threshold, is promoted into the retained
    set along with its still-pending ancestors, so warn/slow spans are
    {e always} kept. Spans discarded by sampling are counted in
    {!sampled_out}. Two caveats: a sampled-out span that never finishes
    is silently absent (it was neither kept nor counted), and a promoted
    span's parent id may refer to a span that was already discarded.

    {b Capacity.} The tracer retains at most [capacity] spans; past that,
    new spans are allocated an id but not retained (counted in
    {!dropped}, distinct from {!sampled_out}), mutations on unretained
    ids are no-ops, and the first overflow appends one warn-status
    ["tracer.capacity"] instant span so truncated exports are
    self-describing.

    A disabled tracer (see {!set_enabled}) is the zero-overhead fast path:
    {!start} and {!instant} return {!null_id} without allocating, and every
    mutation on any id is a no-op. Runs that attach no exporter (bench,
    nemesis) disable tracing so the hot paths pay nothing for it. *)

type t

val null_id : Span.id
(** The id every disabled-tracer operation returns. Never allocated to a
    real span, so mutations on it are no-ops even once re-enabled. *)

val create :
  ?capacity:int ->
  ?enabled:bool ->
  ?sample_rate:float ->
  ?slow:Avdb_sim.Time.t ->
  ?seed:int ->
  ?id_base:int ->
  ?id_stride:int ->
  unit ->
  t
(** [capacity] defaults to 262144 spans (minimum 1); [enabled] to [true].
    [sample_rate] (default [1.], clamped into [[0, 1]]) is the fraction of
    root spans kept by head sampling; [slow] (default: none) is the
    duration at which a sampled-out span is promoted anyway; [seed]
    (default 0) drives the per-root sampling hash.

    [id_base]/[id_stride] (defaults 0/1) put the tracer's span ids on the
    residue class [id_base mod id_stride]: the parallel engine gives shard
    [d] of [n] the pair [(d, n)] so every shard mints globally unique ids
    and a span id carried across a shard boundary in an RPC envelope
    remains a valid parent reference in the merged export. An id minted
    by another tracer is treated as unknown locally: children of a
    cross-shard parent are sampled as new roots. Raises
    [Invalid_argument] unless [0 <= id_base < id_stride]. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Toggling does not discard spans already retained. *)

val sample_rate : t -> float

val start :
  t ->
  at:Avdb_sim.Time.t ->
  ?parent:Span.id ->
  ?site:int ->
  category:string ->
  string ->
  Span.id
(** Opens a span and returns its id. [parent] may be a local enclosing span
    or an id received across an RPC boundary. *)

val set_field : t -> Span.id -> string -> string -> unit

val set_field_int : t -> Span.id -> string -> int -> unit
(** Attaches the integer unrendered ({!Span.Int}); it becomes a string
    only at export, so hot paths never pay [string_of_int] for a span
    that sampling will discard. *)

val recording : t -> Span.id -> bool
(** Whether mutations on this id currently reach an export: the tracer is
    enabled and the span is in the retained set. [false] for pending
    (sampled-out, not yet promoted) spans — hot paths use this to skip
    building field values a discard would throw away, then re-attach them
    if a later {!warn} or slow {!finish} promotes the span. *)

val warn : t -> Span.id -> unit
(** Warn-status spans survive sampling: warning a sampled-out span
    promotes it (and its pending ancestors) into the retained set. *)

val finish : t -> at:Avdb_sim.Time.t -> Span.id -> unit
(** Idempotent: finishing a finished (or dropped) span is a no-op. On a
    sampled-out span this is the keep-or-discard point: promoted when the
    duration reaches the [slow] threshold, otherwise counted in
    {!sampled_out} and forgotten. *)

val instant :
  t ->
  at:Avdb_sim.Time.t ->
  ?parent:Span.id ->
  ?site:int ->
  ?status:Span.status ->
  ?fields:(string * string) list ->
  category:string ->
  string ->
  Span.id
(** A zero-duration span: started and finished at [at]. Built in one
    allocation; equivalent to [start] followed by [set_field] for each
    field in order, [warn] when [status] is [Warn], and [finish]. *)

val find : t -> Span.id -> Span.t option
(** [None] for sampled-out, dropped or never-allocated ids. *)

val spans : t -> Span.t list
(** Retained spans in creation (id) order. *)

val length : t -> int
(** Retained span count. *)

val dropped : t -> int
(** Spans lost to the [capacity] cap. *)

val sampled_out : t -> int
(** Spans discarded by head sampling (after the tail declined to promote
    them) — deliberate, unlike {!dropped}. *)

val merged_spans : t list -> Span.t list
(** Retained spans of several single-domain tracers merged into one
    deterministic order: sorted by [(start, id)]. With per-shard
    [id_base]/[id_stride] the ids never tie, so the order — and hence a
    merged export — is byte-identical across same-seed runs regardless of
    domain interleaving. A tracer is single-writer: each shard owns one
    and only its domain records into it; merging happens after the
    parallel run has joined. *)
