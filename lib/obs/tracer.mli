(** Span collector.

    Components {!start} a span when an operation begins, optionally attach
    string fields, and {!finish} it when the operation completes; spans that
    never finish (a crashed incarnation's continuations are fenced) stay
    open and are exported as such. Span ids are allocated densely in
    creation order, which is engine execution order, so a seeded run always
    yields the same tree.

    The tracer retains at most [capacity] spans; past that, new spans are
    allocated an id but not retained (counted in {!dropped}), and mutations
    on unretained ids are no-ops.

    A disabled tracer (see {!set_enabled}) is the zero-overhead fast path:
    {!start} and {!instant} return {!null_id} without allocating, and every
    mutation on any id is a no-op. Runs that attach no exporter (bench,
    nemesis) disable tracing so the hot paths pay nothing for it. *)

type t

val null_id : Span.id
(** The id every disabled-tracer operation returns. Never allocated to a
    real span, so mutations on it are no-ops even once re-enabled. *)

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] defaults to 262144 spans (minimum 1); [enabled] to [true]. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Toggling does not discard spans already retained. *)

val start :
  t ->
  at:Avdb_sim.Time.t ->
  ?parent:Span.id ->
  ?site:int ->
  category:string ->
  string ->
  Span.id
(** Opens a span and returns its id. [parent] may be a local enclosing span
    or an id received across an RPC boundary. *)

val set_field : t -> Span.id -> string -> string -> unit
val warn : t -> Span.id -> unit

val finish : t -> at:Avdb_sim.Time.t -> Span.id -> unit
(** Idempotent: finishing a finished (or dropped) span is a no-op. *)

val instant :
  t ->
  at:Avdb_sim.Time.t ->
  ?parent:Span.id ->
  ?site:int ->
  ?status:Span.status ->
  ?fields:(string * string) list ->
  category:string ->
  string ->
  Span.id
(** A zero-duration span: started and finished at [at]. Built in one
    allocation; equivalent to [start] followed by [set_field] for each
    field in order, [warn] when [status] is [Warn], and [finish]. *)

val find : t -> Span.id -> Span.t option
(** [None] for dropped or never-allocated ids. *)

val spans : t -> Span.t list
(** Retained spans in creation order. *)

val length : t -> int
val dropped : t -> int
