(** Offline analyzer over exported JSONL artifacts.

    Consumes the files {!Exporter.spans_to_jsonl} and
    {!Exporter.metrics_to_jsonl} write, and renders a plain-text report:

    - per-span-name duration percentiles, computed as per-(name, site)
      {!Avdb_metrics.Sketch} sketches merged across sites — the same
      aggregation path a multi-collector deployment would use;
    - a critical-path breakdown charging each root span's direct
      children (2PC rounds, AV circulation hops) against the root total;
    - per-site fairness of submitted updates and correspondences via
      {!Avdb_metrics.Fairness};
    - staleness over time from the [sync.version_lag] and
      [sync.apply_age_ms] probes, downsampled to at most 20 rows;
    - tracer health (retained / sampled-out / dropped) and peak registry
      memory. *)

type t

val analyze :
  spans:(string * string) list ->
  metrics:(string * string) list ->
  (t, string) result
(** [analyze ~spans ~metrics] parses [(display name, JSONL contents)]
    pairs. [Error "name:line: problem"] pinpoints the first malformed
    row; blank lines are skipped. *)

val render : t -> string
(** The full plain-text report. *)

val registry_words_max : t -> float option
(** Peak value of the unlabelled [registry.words] gauge across the
    metric artifacts — the hook for CI memory budgets. [None] when the
    gauge never appears. *)

val n_spans : t -> int
val n_samples : t -> int
