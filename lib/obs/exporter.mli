(** Serialization of spans and metric time series.

    Three formats:
    - JSONL: one self-describing JSON object per line, per span or sample —
      the format for ad-hoc [jq] analysis;
    - Chrome [trace_event] JSON: loadable in [chrome://tracing] or
      {{:https://ui.perfetto.dev}Perfetto}, with one process lane per site
      and flow arrows linking parent/child spans that live on different
      sites (an AV request crossing an RPC boundary renders as an arrow
      from the requester's call span to the donor's serve span);
    - CSV: the metric time series pivoted wide — one row per snapshot
      instant, one column per metric identity — for spreadsheet plotting.

    All timestamps are simulated microseconds. *)

val spans_to_jsonl : Tracer.t -> string
(** One object per retained span, creation order:
    [{"id":…,"parent":…,"site":…,"category":…,"name":…,"start_us":…,
      "end_us":…|null,"status":"ok"|"warn","fields":{…}}]. *)

val spans_jsonl : Span.t list -> string
(** Same rendering over an explicit span list — the entry point for a
    multi-shard run's merged export (see {!Tracer.merged_spans}). *)

val metrics_to_jsonl : Registry.t -> string
(** One object per sample, chronological:
    [{"at_us":…,"name":…,"labels":{…},"value":…}]. *)

val metrics_jsonl : Registry.sample list -> string
(** Same rendering over an explicit sample list (see
    {!Registry.merged_samples}). *)

val chrome_trace : Tracer.t -> string
(** A [{"traceEvents":[…]}] document: ["M"] process-name metadata per site,
    one ["X"] complete event per finished span (open spans get a zero
    duration and an ["open":true] arg), and ["s"]/["f"] flow events for
    parent links that cross sites. *)

val series_csv : Registry.t -> string
(** Header [time_ms,<key>,…] with keys per {!Registry.series_key} in
    registration order; one row per snapshot. Cells are RFC 4180-quoted. *)

val series_csv_long : Registry.t -> string
(** Long format: header [time_ms,name,labels,value], one row per sample
    (labels rendered [k=v,…] inside one quoted cell). Scales to runs
    whose series count would make the wide pivot unreadable. *)

val wide_series_limit : int
(** Series count above which {!metrics_csv} switches to long format. *)

val metrics_csv : ?wide:bool -> Registry.t -> string
(** The CSV exporters behind one auto-switching entry point: wide
    ({!series_csv}) while the registry has at most {!wide_series_limit}
    series, long ({!series_csv_long}) above that. [?wide] forces a
    shape. *)

val write_file : path:string -> string -> unit
