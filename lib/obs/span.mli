(** Causal spans.

    A span is one timed operation in the simulated system: it has an id, an
    optional parent (same-site nesting {e or} a cross-site causal edge when
    the id was carried inside an RPC envelope), the site it ran on, a
    category ("update", "av", "2pc", "rpc", "sync", "fault", "invariant",
    "membership"), a name, start/end virtual times, a status and free-form
    string fields. Spans are created and mutated through {!Tracer}. *)

type id = int
(** Dense, deterministic: allocated from a per-tracer counter in engine
    execution order, so two runs with the same seed produce identical
    id assignments. *)

type status = Ok | Warn

val status_name : status -> string

type value = Str of string | Int of int
(** Field values stay unrendered until export so the hot path never pays
    integer formatting for a span that sampling will discard. *)

val value_string : value -> string

type t = {
  id : id;
  parent : id option;
  site : int option;  (** [Address.to_int], [None] for siteless spans *)
  category : string;
  name : string;
  start : Avdb_sim.Time.t;
  mutable stop : Avdb_sim.Time.t option;  (** [None] while the span is open *)
  mutable status : status;
  mutable rev_fields : (string * value) list;
}

val is_finished : t -> bool

val duration : t -> Avdb_sim.Time.t option
(** [stop - start]; [None] while open. *)

val fields : t -> (string * string) list
(** In the order they were set, values rendered to strings. *)

val pp : Format.formatter -> t -> unit
