(** Minimal JSON reader/writer for the exporters and the offline
    analyzer.

    The exporters hand-build values and render them with {!to_string};
    strings are escaped per RFC 8259 and non-finite floats (which JSON
    cannot represent) render as [null]. {!of_string} parses one complete
    document back — the analyzer uses it line by line over JSONL
    artifacts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val escape : string -> string
(** The escaped body of a JSON string literal, without the quotes. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON document; [Error] carries a message with the
    byte offset of the problem. Integral number literals parse as [Int],
    all others as [Float]. *)

val member : string -> t -> t option
(** [member k v] is field [k] of object [v]; [None] when absent or when
    [v] is not an object. *)
