(** Minimal JSON writer for the exporters.

    Only serialisation, no parsing: the exporters hand-build values and
    render them with {!to_string}. Strings are escaped per RFC 8259;
    non-finite floats (which JSON cannot represent) render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val escape : string -> string
(** The escaped body of a JSON string literal, without the quotes. *)
