(* Span id 0 is the pre-allocated "null" id of the disabled fast path:
   real ids start at 1, so 0 can never collide with a retained span and
   every mutation on it is a cheap no-op.

   Retention is two-staged. Head sampling decides per ROOT span (a
   deterministic hash of the tracer seed and the root's ordinal, so a
   seeded run keeps the same trees at the same rate no matter how it is
   replayed); descendants inherit the root's verdict through their
   parent's flag. Sampled-out spans still get a record while open —
   parked in [slots], flagged Pending — so the tail can overrule the
   head: a span that warns (or whose finished duration reaches [slow])
   is promoted into the retained set together with its still-pending
   ancestors, and everything else is discarded at finish and counted in
   [sampled_out]. Capacity overflow is the separate [dropped] counter.

   [slots] is a dense array indexed by span id (one word per allocated
   id; discarded entries point at a shared dummy), with a parallel byte
   per id in [flags]. Array reads keep the per-span cost low enough
   that a 1%-sampled run stays within a few percent of tracing-off
   throughput — a hashtable here is what made full tracing cost 2x. *)

let null_id = 0

(* flags bytes *)
let absent = '\000' (* never allocated, capacity-dropped, or discarded *)
let retained = '\001'
let pending = '\002' (* sampled out, but may still be promoted *)

type t = {
  capacity : int;
  mutable enabled : bool;
  sample_rate : float;
  sample_threshold : int; (* sample_rate scaled to the 24-bit hash range *)
  slow : Avdb_sim.Time.t option;
  seed : int;
  mutable next_id : int;
  mutable roots : int; (* root ordinal, feeds the sampling hash *)
  mutable rev_spans : Span.t list; (* retained, most recent first *)
  mutable count : int;
  mutable dropped : int;
  mutable sampled_out : int;
  mutable capacity_warned : bool;
  dummy : Span.t;
  mutable slots : Span.t array;
  mutable flags : Bytes.t;
}

let create ?(capacity = 262144) ?(enabled = true) ?(sample_rate = 1.) ?slow
    ?(seed = 0) () =
  let sample_rate =
    if Float.is_nan sample_rate then 1. else Float.max 0. (Float.min 1. sample_rate)
  in
  {
    capacity = Stdlib.max 1 capacity;
    enabled;
    sample_rate;
    sample_threshold = int_of_float (sample_rate *. 16777216.);
    slow;
    seed;
    next_id = 1;
    roots = 0;
    rev_spans = [];
    count = 0;
    dropped = 0;
    sampled_out = 0;
    capacity_warned = false;
    dummy =
      {
        Span.id = null_id;
        parent = None;
        site = None;
        category = "";
        name = "";
        start = Avdb_sim.Time.of_us 0;
        stop = None;
        status = Span.Ok;
        rev_fields = [];
      };
    slots = [||];
    flags = Bytes.empty;
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let sample_rate t = t.sample_rate

let flag t id =
  if id > 0 && id < Bytes.length t.flags then Bytes.unsafe_get t.flags id
  else absent

let ensure_slot t id =
  let len = Array.length t.slots in
  if id >= len then begin
    let n = Stdlib.max 1024 (Stdlib.max (id + 1) (2 * len)) in
    let slots = Array.make n t.dummy in
    Array.blit t.slots 0 slots 0 len;
    t.slots <- slots;
    let flags = Bytes.make n absent in
    Bytes.blit t.flags 0 flags 0 len;
    t.flags <- flags
  end

(* Two rounds of a splitmix-style mixer over (seed, root ordinal): a pure
   function, so the verdict for root #n depends only on the tracer seed —
   not on how many spans ran in between. *)
let root_sampled t =
  let n = t.roots in
  t.roots <- n + 1;
  let z = ((t.seed + 1) * 0x9E3779B9) + (n * 0x85EBCA77) in
  let z = z lxor (z lsr 15) in
  let z = z * 0xC2B2AE3D land max_int in
  let z = z lxor (z lsr 13) in
  let z = z * 0x27D4EB2F land max_int in
  let z = z lxor (z lsr 16) in
  z land 0xFFFFFF < t.sample_threshold

(* The first time retention overflows, append one self-describing warn
   span (allowed one past capacity) so a truncated export says so. *)
let note_capacity t ~at =
  if not t.capacity_warned then begin
    t.capacity_warned <- true;
    let id = t.next_id in
    t.next_id <- id + 1;
    let span =
      {
        Span.id;
        parent = None;
        site = None;
        category = "tracer";
        name = "tracer.capacity";
        start = at;
        stop = Some at;
        status = Span.Warn;
        rev_fields = [ ("capacity", Span.Int t.capacity) ];
      }
    in
    ensure_slot t id;
    t.slots.(id) <- span;
    Bytes.set t.flags id retained;
    t.rev_spans <- span :: t.rev_spans;
    t.count <- t.count + 1
  end

(* Move [span] (already in slots) into the retained set; false when the
   capacity budget refuses it. *)
let retain t (span : Span.t) =
  if t.count >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    note_capacity t ~at:span.start;
    Bytes.set t.flags span.id absent;
    t.slots.(span.id) <- t.dummy;
    false
  end
  else begin
    t.rev_spans <- span :: t.rev_spans;
    t.count <- t.count + 1;
    Bytes.set t.flags span.id retained;
    true
  end

(* Promote a pending span and its still-pending ancestors so a warn/slow
   leaf keeps its tree context. *)
let rec promote t (span : Span.t) =
  if retain t span then
    match span.parent with
    | Some p when flag t p = pending -> promote t t.slots.(p)
    | _ -> ()

let start t ~at ?parent ?site ~category name =
  if not t.enabled then null_id
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let sampled =
      if t.sample_rate >= 1. then true
      else
        match parent with
        | None -> root_sampled t
        | Some p -> flag t p = retained
    in
    if sampled && t.count >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      note_capacity t ~at
    end
    else begin
      let span =
        {
          Span.id;
          parent;
          site;
          category;
          name;
          start = at;
          stop = None;
          status = Span.Ok;
          rev_fields = [];
        }
      in
      ensure_slot t id;
      Array.unsafe_set t.slots id span;
      if sampled then begin
        t.rev_spans <- span :: t.rev_spans;
        t.count <- t.count + 1;
        Bytes.unsafe_set t.flags id retained
      end
      else Bytes.unsafe_set t.flags id pending
    end;
    id
  end

let find t id = if flag t id = retained then Some t.slots.(id) else None

(* Whether mutations on [id] will reach an export right now. Hot call
   sites use this to skip building field values for spans that sampling
   is about to discard — and re-attach them if the span is later
   promoted (warn / slow), when this turns true. *)
let recording t id = t.enabled && flag t id = retained

(* Both setters test liveness before boxing the value, so a disabled
   tracer (or a mutation on a dropped id) allocates nothing. *)
let set_field t id key value =
  if t.enabled && flag t id <> absent then begin
    let s = t.slots.(id) in
    s.Span.rev_fields <- (key, Span.Str value) :: s.Span.rev_fields
  end

(* The integer is boxed unrendered; it becomes a string at export, and
   only for spans that survive retention. *)
let set_field_int t id key n =
  if t.enabled && flag t id <> absent then begin
    let s = t.slots.(id) in
    s.Span.rev_fields <- (key, Span.Int n) :: s.Span.rev_fields
  end

let warn t id =
  if t.enabled then begin
    let f = flag t id in
    if f <> absent then begin
      let s = t.slots.(id) in
      s.Span.status <- Span.Warn;
      if f = pending then promote t s
    end
  end

let discard t (span : Span.t) =
  (* span.id is in bounds: it was written through ensure_slot *)
  Bytes.unsafe_set t.flags span.id absent;
  Array.unsafe_set t.slots span.id t.dummy;
  t.sampled_out <- t.sampled_out + 1

let slow_enough t ~start ~stop =
  match t.slow with
  | None -> false
  | Some thr -> Avdb_sim.Time.(thr <= diff stop start)

let finish t ~at id =
  if t.enabled then begin
    let f = flag t id in
    if f = retained then begin
      let s = t.slots.(id) in
      if s.Span.stop = None then s.Span.stop <- Some at
    end
    else if f = pending then begin
      let s = Array.unsafe_get t.slots id in
      if s.Span.stop = None then
        (* a pending span cannot be Warn: warn promotes immediately *)
        if slow_enough t ~start:s.Span.start ~stop:at then begin
          s.Span.stop <- Some at;
          promote t s
        end
        else discard t s (* doomed: skip the stop write entirely *)
    end
  end

(* Built in one shot: same id, retention and field order as the historical
   start -> set_field* -> warn? -> finish sequence, without the per-step
   slot round-trips. *)
let instant t ~at ?parent ?site ?(status = Span.Ok) ?(fields = []) ~category name
    =
  if not t.enabled then null_id
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let sampled =
      if t.sample_rate >= 1. then true
      else
        match parent with
        | None -> root_sampled t
        | Some p -> flag t p = retained
    in
    let keep =
      sampled || status = Span.Warn || slow_enough t ~start:at ~stop:at
    in
    if not keep then t.sampled_out <- t.sampled_out + 1
    else if t.count >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      note_capacity t ~at
    end
    else begin
      let span =
        {
          Span.id;
          parent;
          site;
          category;
          name;
          start = at;
          stop = Some at;
          status;
          rev_fields = List.rev_map (fun (k, v) -> (k, Span.Str v)) fields;
        }
      in
      ensure_slot t id;
      t.slots.(id) <- span;
      t.rev_spans <- span :: t.rev_spans;
      t.count <- t.count + 1;
      Bytes.set t.flags id retained;
      (* a warn-promoted instant keeps its pending ancestry too *)
      if not sampled then
        match parent with
        | Some p when flag t p = pending -> promote t t.slots.(p)
        | _ -> ()
    end;
    id
  end

(* Tail promotion appends out of id order; ids are unique and dense, so
   sorting restores creation order for deterministic exports. *)
let spans t =
  List.sort
    (fun (a : Span.t) (b : Span.t) -> Stdlib.compare a.Span.id b.Span.id)
    t.rev_spans

let length t = t.count
let dropped t = t.dropped
let sampled_out t = t.sampled_out
