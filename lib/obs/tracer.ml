(* Span id 0 is the pre-allocated "null" id of the disabled fast path:
   real ids start at 1, so 0 can never collide with a retained span and
   every mutation on it is a cheap no-op. *)
let null_id = 0

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable next_id : int;
  mutable rev_spans : Span.t list;
  mutable count : int;
  mutable dropped : int;
  by_id : (Span.id, Span.t) Hashtbl.t;
}

let create ?(capacity = 262144) ?(enabled = true) () =
  {
    capacity = Stdlib.max 1 capacity;
    enabled;
    next_id = 1;
    rev_spans = [];
    count = 0;
    dropped = 0;
    by_id = Hashtbl.create 1024;
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on

let start t ~at ?parent ?site ~category name =
  if not t.enabled then null_id
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    if t.count >= t.capacity then t.dropped <- t.dropped + 1
    else begin
      let span =
        {
          Span.id;
          parent;
          site;
          category;
          name;
          start = at;
          stop = None;
          status = Span.Ok;
          rev_fields = [];
        }
      in
      t.rev_spans <- span :: t.rev_spans;
      t.count <- t.count + 1;
      Hashtbl.replace t.by_id id span
    end;
    id
  end

let find t id = if id = null_id then None else Hashtbl.find_opt t.by_id id

let set_field t id key value =
  if t.enabled then
    match find t id with
    | Some s -> s.Span.rev_fields <- (key, value) :: s.Span.rev_fields
    | None -> ()

let warn t id =
  if t.enabled then
    match find t id with Some s -> s.Span.status <- Span.Warn | None -> ()

let finish t ~at id =
  if t.enabled then
    match find t id with
    | Some s -> if s.Span.stop = None then s.Span.stop <- Some at
    | None -> ()

(* Built in one shot: same id, retention and field order as the historical
   start -> set_field* -> warn? -> finish sequence, without the per-step
   [by_id] lookups. *)
let instant t ~at ?parent ?site ?(status = Span.Ok) ?(fields = []) ~category name =
  if not t.enabled then null_id
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    if t.count >= t.capacity then t.dropped <- t.dropped + 1
    else begin
      let span =
        {
          Span.id;
          parent;
          site;
          category;
          name;
          start = at;
          stop = Some at;
          status;
          rev_fields = List.rev fields;
        }
      in
      t.rev_spans <- span :: t.rev_spans;
      t.count <- t.count + 1;
      Hashtbl.replace t.by_id id span
    end;
    id
  end

let spans t = List.rev t.rev_spans
let length t = t.count
let dropped t = t.dropped
