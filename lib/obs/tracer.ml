(* Span id 0 is the pre-allocated "null" id of the disabled fast path:
   real ids start at 1, so 0 can never collide with a retained span and
   every mutation on it is a cheap no-op.

   Retention is two-staged. Head sampling decides per ROOT span (a
   deterministic hash of the tracer seed and the root's ordinal, so a
   seeded run keeps the same trees at the same rate no matter how it is
   replayed); descendants inherit the root's verdict through their
   parent's flag. Sampled-out spans still get a record while open —
   parked in [slots], flagged Pending — so the tail can overrule the
   head: a span that warns (or whose finished duration reaches [slow])
   is promoted into the retained set together with its still-pending
   ancestors, and everything else is discarded at finish and counted in
   [sampled_out]. Capacity overflow is the separate [dropped] counter.

   [slots] is a dense array indexed by span id (one word per allocated
   id; discarded entries point at a shared dummy), with a parallel byte
   per id in [flags]. Array reads keep the per-span cost low enough
   that a 1%-sampled run stays within a few percent of tracing-off
   throughput — a hashtable here is what made full tracing cost 2x. *)

let null_id = 0

(* flags bytes *)
let absent = '\000' (* never allocated, capacity-dropped, or discarded *)
let retained = '\001'
let pending = '\002' (* sampled out, but may still be promoted *)

type t = {
  capacity : int;
  mutable enabled : bool;
  sample_rate : float;
  sample_threshold : int; (* sample_rate scaled to the 24-bit hash range *)
  slow : Avdb_sim.Time.t option;
  seed : int;
  (* Public span ids are [ordinal * id_stride + id_base]: with the
     defaults (0, 1) that is the ordinal itself, and with per-shard
     (base, stride) = (shard, n_shards) every shard's tracer mints ids
     from a disjoint residue class — globally unique, so span ids carried
     across a shard boundary inside RPC envelopes stay meaningful parent
     references in a merged export. Storage stays dense: slots and flags
     are indexed by the ordinal, and an id from another tracer simply
     fails the residue test and reads as [absent]. *)
  id_base : int;
  id_stride : int;
  mutable next_id : int; (* next ordinal *)
  mutable roots : int; (* root ordinal, feeds the sampling hash *)
  mutable rev_spans : Span.t list; (* retained, most recent first *)
  mutable count : int;
  mutable dropped : int;
  mutable sampled_out : int;
  mutable capacity_warned : bool;
  dummy : Span.t;
  mutable slots : Span.t array;
  mutable flags : Bytes.t;
}

let create ?(capacity = 262144) ?(enabled = true) ?(sample_rate = 1.) ?slow
    ?(seed = 0) ?(id_base = 0) ?(id_stride = 1) () =
  if id_stride < 1 then invalid_arg "Tracer.create: id_stride must be >= 1";
  if id_base < 0 || id_base >= id_stride then
    invalid_arg "Tracer.create: id_base out of [0, id_stride)";
  let sample_rate =
    if Float.is_nan sample_rate then 1. else Float.max 0. (Float.min 1. sample_rate)
  in
  {
    capacity = Stdlib.max 1 capacity;
    enabled;
    sample_rate;
    sample_threshold = int_of_float (sample_rate *. 16777216.);
    slow;
    seed;
    id_base;
    id_stride;
    next_id = 1;
    roots = 0;
    rev_spans = [];
    count = 0;
    dropped = 0;
    sampled_out = 0;
    capacity_warned = false;
    dummy =
      {
        Span.id = null_id;
        parent = None;
        site = None;
        category = "";
        name = "";
        start = Avdb_sim.Time.of_us 0;
        stop = None;
        status = Span.Ok;
        rev_fields = [];
      };
    slots = [||];
    flags = Bytes.empty;
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let sample_rate t = t.sample_rate

(* Public id <-> dense ordinal. Integer division already strips the base
   ([ord * stride + base) / stride = ord] since [base < stride]). *)
let ext t ord = (ord * t.id_stride) + t.id_base
let ord_of t id = id / t.id_stride
let is_local t id = id > 0 && id mod t.id_stride = t.id_base

let flag t id =
  if is_local t id then begin
    let o = ord_of t id in
    if o > 0 && o < Bytes.length t.flags then Bytes.unsafe_get t.flags o else absent
  end
  else absent

let ensure_slot t ord =
  let len = Array.length t.slots in
  if ord >= len then begin
    let n = Stdlib.max 1024 (Stdlib.max (ord + 1) (2 * len)) in
    let slots = Array.make n t.dummy in
    Array.blit t.slots 0 slots 0 len;
    t.slots <- slots;
    let flags = Bytes.make n absent in
    Bytes.blit t.flags 0 flags 0 len;
    t.flags <- flags
  end

(* Two rounds of a splitmix-style mixer over (seed, root ordinal): a pure
   function, so the verdict for root #n depends only on the tracer seed —
   not on how many spans ran in between. *)
let root_sampled t =
  let n = t.roots in
  t.roots <- n + 1;
  let z = ((t.seed + 1) * 0x9E3779B9) + (n * 0x85EBCA77) in
  let z = z lxor (z lsr 15) in
  let z = z * 0xC2B2AE3D land max_int in
  let z = z lxor (z lsr 13) in
  let z = z * 0x27D4EB2F land max_int in
  let z = z lxor (z lsr 16) in
  z land 0xFFFFFF < t.sample_threshold

(* The first time retention overflows, append one self-describing warn
   span (allowed one past capacity) so a truncated export says so. *)
let note_capacity t ~at =
  if not t.capacity_warned then begin
    t.capacity_warned <- true;
    let ord = t.next_id in
    t.next_id <- ord + 1;
    let span =
      {
        Span.id = ext t ord;
        parent = None;
        site = None;
        category = "tracer";
        name = "tracer.capacity";
        start = at;
        stop = Some at;
        status = Span.Warn;
        rev_fields = [ ("capacity", Span.Int t.capacity) ];
      }
    in
    ensure_slot t ord;
    t.slots.(ord) <- span;
    Bytes.set t.flags ord retained;
    t.rev_spans <- span :: t.rev_spans;
    t.count <- t.count + 1
  end

(* Move [span] (already in slots) into the retained set; false when the
   capacity budget refuses it. *)
let retain t (span : Span.t) =
  let ord = ord_of t span.id in
  if t.count >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    note_capacity t ~at:span.start;
    Bytes.set t.flags ord absent;
    t.slots.(ord) <- t.dummy;
    false
  end
  else begin
    t.rev_spans <- span :: t.rev_spans;
    t.count <- t.count + 1;
    Bytes.set t.flags ord retained;
    true
  end

(* Promote a pending span and its still-pending ancestors so a warn/slow
   leaf keeps its tree context. *)
let rec promote t (span : Span.t) =
  if retain t span then
    match span.parent with
    | Some p when flag t p = pending -> promote t t.slots.(ord_of t p)
    | _ -> ()

let start t ~at ?parent ?site ~category name =
  if not t.enabled then null_id
  else begin
    let ord = t.next_id in
    t.next_id <- ord + 1;
    let id = ext t ord in
    let sampled =
      if t.sample_rate >= 1. then true
      else
        match parent with
        | None -> root_sampled t
        | Some p -> flag t p = retained
    in
    if sampled && t.count >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      note_capacity t ~at
    end
    else begin
      let span =
        {
          Span.id;
          parent;
          site;
          category;
          name;
          start = at;
          stop = None;
          status = Span.Ok;
          rev_fields = [];
        }
      in
      ensure_slot t ord;
      Array.unsafe_set t.slots ord span;
      if sampled then begin
        t.rev_spans <- span :: t.rev_spans;
        t.count <- t.count + 1;
        Bytes.unsafe_set t.flags ord retained
      end
      else Bytes.unsafe_set t.flags ord pending
    end;
    id
  end

let find t id = if flag t id = retained then Some t.slots.(ord_of t id) else None

(* Whether mutations on [id] will reach an export right now. Hot call
   sites use this to skip building field values for spans that sampling
   is about to discard — and re-attach them if the span is later
   promoted (warn / slow), when this turns true. *)
let recording t id = t.enabled && flag t id = retained

(* Both setters test liveness before boxing the value, so a disabled
   tracer (or a mutation on a dropped id) allocates nothing. *)
let set_field t id key value =
  if t.enabled && flag t id <> absent then begin
    let s = t.slots.(ord_of t id) in
    s.Span.rev_fields <- (key, Span.Str value) :: s.Span.rev_fields
  end

(* The integer is boxed unrendered; it becomes a string at export, and
   only for spans that survive retention. *)
let set_field_int t id key n =
  if t.enabled && flag t id <> absent then begin
    let s = t.slots.(ord_of t id) in
    s.Span.rev_fields <- (key, Span.Int n) :: s.Span.rev_fields
  end

let warn t id =
  if t.enabled then begin
    let f = flag t id in
    if f <> absent then begin
      let s = t.slots.(ord_of t id) in
      s.Span.status <- Span.Warn;
      if f = pending then promote t s
    end
  end

let discard t (span : Span.t) =
  (* span.id's ordinal is in bounds: it was written through ensure_slot *)
  let ord = ord_of t span.id in
  Bytes.unsafe_set t.flags ord absent;
  Array.unsafe_set t.slots ord t.dummy;
  t.sampled_out <- t.sampled_out + 1

let slow_enough t ~start ~stop =
  match t.slow with
  | None -> false
  | Some thr -> Avdb_sim.Time.(thr <= diff stop start)

let finish t ~at id =
  if t.enabled then begin
    let f = flag t id in
    if f = retained then begin
      let s = t.slots.(ord_of t id) in
      if s.Span.stop = None then s.Span.stop <- Some at
    end
    else if f = pending then begin
      let s = Array.unsafe_get t.slots (ord_of t id) in
      if s.Span.stop = None then
        (* a pending span cannot be Warn: warn promotes immediately *)
        if slow_enough t ~start:s.Span.start ~stop:at then begin
          s.Span.stop <- Some at;
          promote t s
        end
        else discard t s (* doomed: skip the stop write entirely *)
    end
  end

(* Built in one shot: same id, retention and field order as the historical
   start -> set_field* -> warn? -> finish sequence, without the per-step
   slot round-trips. *)
let instant t ~at ?parent ?site ?(status = Span.Ok) ?(fields = []) ~category name
    =
  if not t.enabled then null_id
  else begin
    let ord = t.next_id in
    t.next_id <- ord + 1;
    let id = ext t ord in
    let sampled =
      if t.sample_rate >= 1. then true
      else
        match parent with
        | None -> root_sampled t
        | Some p -> flag t p = retained
    in
    let keep =
      sampled || status = Span.Warn || slow_enough t ~start:at ~stop:at
    in
    if not keep then t.sampled_out <- t.sampled_out + 1
    else if t.count >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      note_capacity t ~at
    end
    else begin
      let span =
        {
          Span.id;
          parent;
          site;
          category;
          name;
          start = at;
          stop = Some at;
          status;
          rev_fields = List.rev_map (fun (k, v) -> (k, Span.Str v)) fields;
        }
      in
      ensure_slot t ord;
      t.slots.(ord) <- span;
      t.rev_spans <- span :: t.rev_spans;
      t.count <- t.count + 1;
      Bytes.set t.flags ord retained;
      (* a warn-promoted instant keeps its pending ancestry too *)
      if not sampled then
        match parent with
        | Some p when flag t p = pending -> promote t t.slots.(ord_of t p)
        | _ -> ()
    end;
    id
  end

(* Tail promotion appends out of id order; ids are unique and dense, so
   sorting restores creation order for deterministic exports. *)
let spans t =
  List.sort
    (fun (a : Span.t) (b : Span.t) -> Stdlib.compare a.Span.id b.Span.id)
    t.rev_spans

let length t = t.count
let dropped t = t.dropped
let sampled_out t = t.sampled_out

(* Shard-local creation orders interleaved into one deterministic global
   order: span ids from disjoint residue classes never tie, so sorting by
   (start, id) is a total order independent of how the shards' real-time
   execution interleaved. *)
let merged_spans tracers =
  List.sort
    (fun (a : Span.t) (b : Span.t) ->
      match Avdb_sim.Time.compare a.Span.start b.Span.start with
      | 0 -> Int.compare a.Span.id b.Span.id
      | c -> c)
    (List.concat_map spans tracers)
