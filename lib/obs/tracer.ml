type t = {
  capacity : int;
  mutable next_id : int;
  mutable rev_spans : Span.t list;
  mutable count : int;
  mutable dropped : int;
  by_id : (Span.id, Span.t) Hashtbl.t;
}

let create ?(capacity = 262144) () =
  {
    capacity = Stdlib.max 1 capacity;
    next_id = 1;
    rev_spans = [];
    count = 0;
    dropped = 0;
    by_id = Hashtbl.create 1024;
  }

let start t ~at ?parent ?site ~category name =
  let id = t.next_id in
  t.next_id <- id + 1;
  if t.count >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    let span =
      {
        Span.id;
        parent;
        site;
        category;
        name;
        start = at;
        stop = None;
        status = Span.Ok;
        rev_fields = [];
      }
    in
    t.rev_spans <- span :: t.rev_spans;
    t.count <- t.count + 1;
    Hashtbl.replace t.by_id id span
  end;
  id

let find t id = Hashtbl.find_opt t.by_id id

let set_field t id key value =
  match find t id with
  | Some s -> s.Span.rev_fields <- (key, value) :: s.Span.rev_fields
  | None -> ()

let warn t id =
  match find t id with Some s -> s.Span.status <- Span.Warn | None -> ()

let finish t ~at id =
  match find t id with
  | Some s -> if s.Span.stop = None then s.Span.stop <- Some at
  | None -> ()

let instant t ~at ?parent ?site ?(status = Span.Ok) ?(fields = []) ~category name =
  let id = start t ~at ?parent ?site ~category name in
  List.iter (fun (k, v) -> set_field t id k v) fields;
  if status = Span.Warn then warn t id;
  finish t ~at id;
  id

let spans t = List.rev t.rev_spans
let length t = t.count
let dropped t = t.dropped
