type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
      if Float.is_finite x then
        (* %.12g keeps the rendering deterministic and round-trippable
           enough for metric values; integers render without a point. *)
        Buffer.add_string buf (Printf.sprintf "%.12g" x)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Recursive-descent parser for the offline analyzer: strict enough to
   reject malformed artifacts (trailing garbage, unterminated strings),
   lenient only in that any numeric shape is accepted (integral renders
   parse as [Int], everything else as [Float]). *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
            | Some code ->
                pos := !pos + 4;
                add_utf8 buf code
            | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    let integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit)
    in
    if integral then
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail "bad number"
    else
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input"
    else
      match s.[!pos] with
      | '{' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              if !pos < n && s.[!pos] = ',' then begin
                incr pos;
                members ((k, v) :: acc)
              end
              else begin
                expect '}';
                List.rev ((k, v) :: acc)
              end
            in
            Obj (members [])
          end
      | '[' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              if !pos < n && s.[!pos] = ',' then begin
                incr pos;
                elements (v :: acc)
              end
              else begin
                expect ']';
                List.rev (v :: acc)
              end
            in
            Arr (elements [])
          end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
