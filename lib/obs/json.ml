type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
      if Float.is_finite x then
        (* %.12g keeps the rendering deterministic and round-trippable
           enough for metric values; integers render without a point. *)
        Buffer.add_string buf (Printf.sprintf "%.12g" x)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf
