(* Offline analyzer over exported JSONL artifacts: span files (one span
   object per line) and metric files (one sample per line). Everything
   here re-derives its statistics through the mergeable sketch machinery
   — per-(name, site) sketches merged across sites — so the report's
   percentiles exercise exactly the aggregation path a multi-collector
   deployment would use. *)

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_site : int option;
  sp_name : string;
  sp_start_us : int;
  sp_end_us : int option;
  sp_status : string;
}

type msample = {
  ms_at_us : int;
  ms_name : string;
  ms_labels : (string * string) list;
  ms_value : float;
}

type t = { spans : span array; samples : msample array }

(* --- parsing --- *)

let to_int = function
  | Json.Int i -> Some i
  | Json.Float f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let to_str = function Json.Str s -> Some s | _ -> None

let span_of_json j =
  let req what = function Some v -> Ok v | None -> Error ("span missing " ^ what) in
  let ( let* ) = Result.bind in
  let* id = req "id" (Option.bind (Json.member "id" j) to_int) in
  let* name = req "name" (Option.bind (Json.member "name" j) to_str) in
  let* start_us = req "start_us" (Option.bind (Json.member "start_us" j) to_int) in
  let status =
    Option.value ~default:"ok" (Option.bind (Json.member "status" j) to_str)
  in
  Ok
    {
      sp_id = id;
      sp_parent = Option.bind (Json.member "parent" j) to_int;
      sp_site = Option.bind (Json.member "site" j) to_int;
      sp_name = name;
      sp_start_us = start_us;
      sp_end_us = Option.bind (Json.member "end_us" j) to_int;
      sp_status = status;
    }

let sample_of_json j =
  let req what = function Some v -> Ok v | None -> Error ("sample missing " ^ what) in
  let ( let* ) = Result.bind in
  let* at_us = req "at_us" (Option.bind (Json.member "at_us" j) to_int) in
  let* name = req "name" (Option.bind (Json.member "name" j) to_str) in
  let* value = req "value" (Option.bind (Json.member "value" j) to_float) in
  let labels =
    match Json.member "labels" j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (to_str v))
          fields
    | _ -> []
  in
  Ok { ms_at_us = at_us; ms_name = name; ms_labels = labels; ms_value = value }

(* Parse every line of every (source name, contents) pair, failing with
   "source:line: problem" on the first malformed row. *)
let parse_jsonl files of_json =
  let acc = ref [] in
  let err = ref None in
  List.iter
    (fun (source, contents) ->
      if !err = None then begin
        let lines = String.split_on_char '\n' contents in
        List.iteri
          (fun i line ->
            if !err = None && String.trim line <> "" then
              match Json.of_string line with
              | Error e -> err := Some (Printf.sprintf "%s:%d: %s" source (i + 1) e)
              | Ok j -> (
                  match of_json j with
                  | Error e -> err := Some (Printf.sprintf "%s:%d: %s" source (i + 1) e)
                  | Ok v -> acc := v :: !acc))
          lines
      end)
    files;
  match !err with Some e -> Error e | None -> Ok (Array.of_list (List.rev !acc))

let analyze ~spans ~metrics =
  match parse_jsonl spans span_of_json with
  | Error _ as e -> e
  | Ok sp -> (
      match parse_jsonl metrics sample_of_json with
      | Error _ as e -> e
      | Ok ms -> Ok { spans = sp; samples = ms })

let n_spans t = Array.length t.spans
let n_samples t = Array.length t.samples

(* --- derived views over the samples --- *)

(* Last value per (name, labels): gauges and counters are cumulative, so
   the final snapshot is the run's total. *)
let last_values t name =
  let tbl : ((string * string) list, int * float) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      if s.ms_name = name then
        match Hashtbl.find_opt tbl s.ms_labels with
        | Some (at, _) when at > s.ms_at_us -> ()
        | _ -> Hashtbl.replace tbl s.ms_labels (s.ms_at_us, s.ms_value))
    t.samples;
  Hashtbl.fold (fun labels (_, v) acc -> (labels, v) :: acc) tbl []

let last_scalar t name =
  match last_values t name with
  | [ ([], v) ] -> Some v
  | values -> (
      match List.assoc_opt [] values with Some v -> Some v | None -> None)

let registry_words_max t =
  Array.fold_left
    (fun acc s ->
      if s.ms_name = "registry.words" && s.ms_labels = [] then
        Some (match acc with Some m -> Float.max m s.ms_value | None -> s.ms_value)
      else acc)
    None t.samples

(* --- rendering --- *)

let dur_ms sp =
  Option.map (fun e -> float_of_int (e - sp.sp_start_us) /. 1000.) sp.sp_end_us

let heading buf title =
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title)

let span_percentiles buf t =
  let module Sketch = Avdb_metrics.Sketch in
  (* one sketch per (span name, site), merged across sites per name *)
  let per_site : (string * int option, Sketch.t) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun sp ->
      match dur_ms sp with
      | None -> ()
      | Some d ->
          let key = (sp.sp_name, sp.sp_site) in
          let sk =
            match Hashtbl.find_opt per_site key with
            | Some sk -> sk
            | None ->
                let sk = Sketch.create () in
                Hashtbl.add per_site key sk;
                sk
          in
          Sketch.add sk d)
    t.spans;
  let merged : (string, Sketch.t) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun (name, _) sk ->
      match Hashtbl.find_opt merged name with
      | Some acc -> Hashtbl.replace merged name (Sketch.merge acc sk)
      | None -> Hashtbl.replace merged name sk)
    per_site;
  let rows =
    List.sort compare (Hashtbl.fold (fun name sk acc -> (name, sk) :: acc) merged [])
  in
  heading buf "span durations (ms, sketches merged across sites)";
  if rows = [] then Buffer.add_string buf "no finished spans\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%-28s %8s %9s %9s %9s %9s %9s\n" "name" "count" "p50" "p90"
         "p99" "p999" "max");
    List.iter
      (fun (name, sk) ->
        Buffer.add_string buf
          (Printf.sprintf "%-28s %8d %9.3f %9.3f %9.3f %9.3f %9.3f\n" name
             (Sketch.count sk) (Sketch.percentile sk 50.) (Sketch.percentile sk 90.)
             (Sketch.percentile sk 99.)
             (Sketch.percentile sk 99.9)
             (Sketch.max sk)))
      rows
  end

(* Where the time goes inside the update protocols: group each root span's
   direct children by name and charge their summed duration against the
   root's. AV circulation and the 2PC rounds surface here. *)
let critical_path buf t =
  let by_id = Hashtbl.create (Array.length t.spans) in
  Array.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) t.spans;
  let children = Hashtbl.create 64 in
  Array.iter
    (fun sp ->
      match sp.sp_parent with
      | Some p when Hashtbl.mem by_id p ->
          Hashtbl.replace children p (sp :: Option.value ~default:[] (Hashtbl.find_opt children p))
      | _ -> ())
    t.spans;
  let roots = Hashtbl.create 8 in
  Array.iter
    (fun sp ->
      if sp.sp_parent = None && dur_ms sp <> None then
        Hashtbl.replace roots sp.sp_name (sp :: Option.value ~default:[] (Hashtbl.find_opt roots sp.sp_name)))
    t.spans;
  let root_rows =
    List.sort compare (Hashtbl.fold (fun name sps acc -> (name, sps) :: acc) roots [])
  in
  heading buf "critical path (direct children per root span)";
  if root_rows = [] then Buffer.add_string buf "no finished root spans\n"
  else
    List.iter
      (fun (name, sps) ->
        let n = List.length sps in
        let total =
          List.fold_left (fun acc sp -> acc +. Option.value ~default:0. (dur_ms sp)) 0. sps
        in
        Buffer.add_string buf
          (Printf.sprintf "%-30s n=%-7d mean %8.3f ms\n" name n
             (total /. float_of_int n));
        let per_child = Hashtbl.create 8 in
        List.iter
          (fun sp ->
            List.iter
              (fun child ->
                match dur_ms child with
                | None -> ()
                | Some d ->
                    let cn, cd =
                      Option.value ~default:(0, 0.)
                        (Hashtbl.find_opt per_child child.sp_name)
                    in
                    Hashtbl.replace per_child child.sp_name (cn + 1, cd +. d))
              (Option.value ~default:[] (Hashtbl.find_opt children sp.sp_id)))
          sps;
        List.iter
          (fun (cname, (cn, cd)) ->
            Buffer.add_string buf
              (Printf.sprintf "  +- %-26s n=%-7d mean %8.3f ms  %5.1f%% of root\n"
                 cname cn
                 (cd /. float_of_int cn)
                 (if total > 0. then 100. *. cd /. total else 0.)))
          (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_child [])))
      root_rows

let fairness buf t =
  let module Fairness = Avdb_metrics.Fairness in
  heading buf "per-site fairness (final snapshot)";
  let one name =
    let values =
      List.filter_map
        (fun (labels, v) ->
          match List.assoc_opt "site" labels with Some _ -> Some v | None -> None)
        (last_values t name)
    in
    if List.length values >= 2 then begin
      let sorted = List.sort compare values in
      let min_v = List.hd sorted and max_v = List.hd (List.rev sorted) in
      Buffer.add_string buf
        (Printf.sprintf
           "%-24s sites=%-5d jain=%.3f max/min=%.2f min=%.0f max=%.0f\n" name
           (List.length values) (Fairness.jain_index values)
           (Fairness.max_min_ratio values)
           min_v max_v)
    end
  in
  one "update.submitted";
  one "update.applied_local";
  one "net.correspondences";
  one "net.sent"

(* Staleness over time: per snapshot instant, the worst and mean per-item
   version lag plus the mean replica apply age — downsampled to at most
   [max_rows] evenly spaced rows. *)
let staleness buf t =
  let times = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      if s.ms_name = "sync.version_lag" || s.ms_name = "sync.apply_age_ms" then begin
        let lags, ages =
          Option.value ~default:([], []) (Hashtbl.find_opt times s.ms_at_us)
        in
        if s.ms_name = "sync.version_lag" then
          Hashtbl.replace times s.ms_at_us (s.ms_value :: lags, ages)
        else Hashtbl.replace times s.ms_at_us (lags, s.ms_value :: ages)
      end)
    t.samples;
  let rows =
    List.sort compare (Hashtbl.fold (fun at v acc -> (at, v) :: acc) times [])
  in
  heading buf "staleness over time";
  if rows = [] then Buffer.add_string buf "no sync lag probes in the artifacts\n"
  else begin
    let max_rows = 20 in
    let n = List.length rows in
    let step = (n + max_rows - 1) / max_rows in
    Buffer.add_string buf
      (Printf.sprintf "%12s %12s %12s %16s\n" "time_ms" "lag_max" "lag_mean"
         "apply_age_ms");
    List.iteri
      (fun i (at, (lags, ages)) ->
        if i mod step = 0 || i = n - 1 then begin
          let mean = function
            | [] -> 0.
            | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
          in
          let lag_max = List.fold_left Float.max 0. lags in
          Buffer.add_string buf
            (Printf.sprintf "%12.1f %12.0f %12.2f %16.1f\n"
               (float_of_int at /. 1000.)
               lag_max (mean lags) (mean ages))
        end)
      rows
  end

let tracer_health buf t =
  heading buf "tracer";
  let open_spans =
    Array.fold_left (fun acc sp -> if sp.sp_end_us = None then acc + 1 else acc) 0 t.spans
  in
  let warn_spans =
    Array.fold_left (fun acc sp -> if sp.sp_status = "warn" then acc + 1 else acc) 0 t.spans
  in
  Buffer.add_string buf
    (Printf.sprintf "spans in artifacts: %d (%d open, %d warn)\n"
       (Array.length t.spans) open_spans warn_spans);
  let scalar name =
    match last_scalar t name with Some v -> Printf.sprintf "%.0f" v | None -> "n/a"
  in
  Buffer.add_string buf
    (Printf.sprintf "retained=%s sampled_out=%s dropped=%s\n" (scalar "tracer.retained")
       (scalar "tracer.sampled_out") (scalar "tracer.dropped"))

let registry_memory buf t =
  heading buf "registry memory";
  match registry_words_max t with
  | None -> Buffer.add_string buf "no registry.words gauge in the artifacts\n"
  | Some words ->
      Buffer.add_string buf
        (Printf.sprintf "peak registry footprint: %.0f words (%.1f KiB)\n" words
           (words *. 8. /. 1024.))

let render t =
  let buf = Buffer.create 4096 in
  span_percentiles buf t;
  Buffer.add_char buf '\n';
  critical_path buf t;
  Buffer.add_char buf '\n';
  fairness buf t;
  Buffer.add_char buf '\n';
  staleness buf t;
  Buffer.add_char buf '\n';
  tracer_health buf t;
  Buffer.add_char buf '\n';
  registry_memory buf t;
  Buffer.contents buf
