(** Unified metrics registry.

    One registration API for everything the system counts: native counters
    and quantile sketches, plus {e sourced gauges} — closures over existing
    mutable state (the per-site {!Avdb_core.Update.Metrics} record, the
    network's {!Avdb_net.Stats} totals, AV table levels) sampled lazily, so
    the hot paths keep their cheap field increments and still show up in
    one exported namespace.

    Metric identity is [(name, labels)]; labels are ordered
    [(key, value)] pairs, conventionally [("site", "1")] and/or
    [("item", "product3")]. Registering the same counter or histogram twice
    returns the existing instrument; registering a gauge or attached sketch
    under a taken identity raises.

    {!snapshot} appends one sample per registered metric (six for
    sketches: [.count], [.mean], [.p50], [.p90], [.p99], [.p999]) to an
    in-memory time series that the exporters turn into CSV / JSONL. Each
    series is a bounded ring of the most recent [retention] snapshots —
    older samples fall off the back — so registry memory is capped at
    [O(series x retention)] no matter how long the run is; {!footprint_words}
    measures it. *)

type t

type labels = (string * string) list

type counter
type histogram
(** A mergeable fixed-memory quantile sketch ({!Avdb_metrics.Sketch}). *)

val create : ?retention:int -> unit -> t
(** [retention] (default 512, minimum 1) caps how many snapshots each
    series keeps. *)

val retention : t -> int

val counter : t -> ?labels:labels -> string -> counter
val inc : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> ?labels:labels -> string -> (unit -> float) -> unit
(** [gauge t name f]: [f] is called at each {!snapshot}. Raises
    [Invalid_argument] if [(name, labels)] is already registered. *)

val histogram : t -> ?labels:labels -> string -> histogram
val observe : histogram -> float -> unit

val attach_sketch :
  t -> ?labels:labels -> string -> (unit -> Avdb_metrics.Sketch.t) -> unit
(** Register an externally owned sketch source: [f] is called at each
    {!snapshot}, so it can return a per-site sketch in place or merge
    several on the fly (e.g. a cluster-wide latency distribution built
    with {!Avdb_metrics.Sketch.merge}). Raises [Invalid_argument] on a
    duplicate identity. *)

type sample = {
  at : Avdb_sim.Time.t;
  name : string;
  labels : labels;
  value : float;
}

val snapshot : t -> at:Avdb_sim.Time.t -> unit
(** Samples every registered metric, in registration order. *)

val snapshot_count : t -> int

val samples : t -> sample list
(** Retained samples, chronological (snapshot order, registration order
    within a snapshot). At most [retention] per series: a long run only
    keeps each series' most recent window. *)

val n_series : t -> int
(** Number of exported series (known after the first snapshot). *)

val merged_samples : t list -> sample list
(** Samples of several single-writer registries merged chronologically
    (stable: registry order is preserved within one snapshot instant).
    The parallel engine gives each shard its own registry — a registry
    itself is {e not} safe for concurrent emission — and merges at
    export. *)

val footprint_words : t -> int
(** Approximate heap words held by the registry's own storage: series
    rings, metric records and owned sketches. Gauge closures and the
    state they capture are deliberately excluded. *)

val series_key : name:string -> labels:labels -> string
(** Canonical rendering of a metric identity, e.g.
    ["av.available{site=1,item=p3}"]. *)
