(** Unified metrics registry.

    One registration API for everything the system counts: native counters
    and histograms, plus {e sourced gauges} — closures over existing mutable
    state (the per-site {!Avdb_core.Update.Metrics} record, the network's
    {!Avdb_net.Stats} totals, AV table levels) sampled lazily, so the hot
    paths keep their cheap field increments and still show up in one
    exported namespace.

    Metric identity is [(name, labels)]; labels are ordered
    [(key, value)] pairs, conventionally [("site", "1")] and/or
    [("item", "product3")]. Registering the same counter or histogram twice
    returns the existing instrument; registering a gauge under a taken
    identity raises.

    {!snapshot} appends one sample per registered metric (three for
    histograms: [.count], [.mean], [.p99]) to an in-memory time series that
    the exporters turn into CSV / JSONL. *)

type t

type labels = (string * string) list

type counter
type histogram

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
val inc : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> ?labels:labels -> string -> (unit -> float) -> unit
(** [gauge t name f]: [f] is called at each {!snapshot}. Raises
    [Invalid_argument] if [(name, labels)] is already registered. *)

val histogram : t -> ?labels:labels -> string -> histogram
val observe : histogram -> float -> unit

type sample = {
  at : Avdb_sim.Time.t;
  name : string;
  labels : labels;
  value : float;
}

val snapshot : t -> at:Avdb_sim.Time.t -> unit
(** Samples every registered metric, in registration order. *)

val snapshot_count : t -> int

val samples : t -> sample list
(** All samples, chronological (snapshot order, registration order within
    a snapshot). *)

val series_key : name:string -> labels:labels -> string
(** Canonical rendering of a metric identity, e.g.
    ["av.available{site=1,item=p3}"]. *)
