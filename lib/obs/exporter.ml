open Avdb_sim

let fields_obj fields = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) fields)

let span_to_json (s : Span.t) =
  Json.Obj
    [
      ("id", Json.Int s.Span.id);
      ( "parent",
        match s.Span.parent with Some p -> Json.Int p | None -> Json.Null );
      ("site", match s.Span.site with Some i -> Json.Int i | None -> Json.Null);
      ("category", Json.Str s.Span.category);
      ("name", Json.Str s.Span.name);
      ("start_us", Json.Int (Time.to_us s.Span.start));
      ( "end_us",
        match s.Span.stop with
        | Some e -> Json.Int (Time.to_us e)
        | None -> Json.Null );
      ("status", Json.Str (Span.status_name s.Span.status));
      ("fields", fields_obj (Span.fields s));
    ]

let spans_jsonl spans =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (span_to_json s));
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let spans_to_jsonl tracer = spans_jsonl (Tracer.spans tracer)

let metrics_jsonl samples =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (s : Registry.sample) ->
      let obj =
        Json.Obj
          [
            ("at_us", Json.Int (Time.to_us s.Registry.at));
            ("name", Json.Str s.Registry.name);
            ("labels", fields_obj s.Registry.labels);
            ("value", Json.Float s.Registry.value);
          ]
      in
      Buffer.add_string buf (Json.to_string obj);
      Buffer.add_char buf '\n')
    samples;
  Buffer.contents buf

let metrics_to_jsonl registry = metrics_jsonl (Registry.samples registry)

(* Chrome trace_event format. pid/tid is the site index (or 0 for spans with
   no site, e.g. cluster-level probes). Flow events ("s" start / "f" finish)
   draw arrows for parent links whose endpoints are on different sites, which
   is exactly the RPC boundaries. *)
let chrome_trace tracer =
  let spans = Tracer.spans tracer in
  let lane (s : Span.t) = Option.value s.Span.site ~default:0 in
  let sites =
    List.sort_uniq compare (List.map lane spans)
  in
  let meta =
    List.map
      (fun site ->
        Json.Obj
          [
            ("ph", Json.Str "M");
            ("name", Json.Str "process_name");
            ("pid", Json.Int site);
            ("tid", Json.Int site);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if site = 0 then "site 0 / cluster"
                       else Printf.sprintf "site %d" site) );
                ] );
          ])
      sites
  in
  let complete (s : Span.t) =
    let start_us = Time.to_us s.Span.start in
    let dur_us, open_arg =
      match s.Span.stop with
      | Some e -> (Time.to_us e - start_us, [])
      | None -> (0, [ ("open", Json.Bool true) ])
    in
    let args =
      [ ("span_id", Json.Int s.Span.id) ]
      @ (match s.Span.parent with
        | Some p -> [ ("parent_id", Json.Int p) ]
        | None -> [])
      @ [ ("status", Json.Str (Span.status_name s.Span.status)) ]
      @ open_arg
      @ List.map (fun (k, v) -> (k, Json.Str v)) (Span.fields s)
    in
    Json.Obj
      [
        ("ph", Json.Str "X");
        ("name", Json.Str s.Span.name);
        ("cat", Json.Str s.Span.category);
        ("ts", Json.Int start_us);
        ("dur", Json.Int dur_us);
        ("pid", Json.Int (lane s));
        ("tid", Json.Int (lane s));
        ("args", Json.Obj args);
      ]
  in
  let flows =
    List.concat_map
      (fun (s : Span.t) ->
        match s.Span.parent with
        | None -> []
        | Some pid -> (
            match Tracer.find tracer pid with
            | Some parent when lane parent <> lane s ->
                let flow ph (at : Time.t) sp =
                  Json.Obj
                    ([
                       ("ph", Json.Str ph);
                       ("id", Json.Int s.Span.id);
                       ("name", Json.Str s.Span.name);
                       ("cat", Json.Str s.Span.category);
                       ("ts", Json.Int (Time.to_us at));
                       ("pid", Json.Int (lane sp));
                       ("tid", Json.Int (lane sp));
                     ]
                    @ if ph = "f" then [ ("bp", Json.Str "e") ] else [])
                in
                [ flow "s" parent.Span.start parent; flow "f" s.Span.start s ]
            | _ -> []))
      spans
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (meta @ List.map complete spans @ flows));
         ("displayTimeUnit", Json.Str "ms");
       ])

let csv_cell s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let series_csv registry =
  let samples = Registry.samples registry in
  (* Column order: first appearance; row order: distinct sample times. *)
  let columns = Hashtbl.create 64 in
  let rev_columns = ref [] in
  let rows = Hashtbl.create 64 in
  let rev_times = ref [] in
  List.iter
    (fun (s : Registry.sample) ->
      let key = Registry.series_key ~name:s.Registry.name ~labels:s.Registry.labels in
      if not (Hashtbl.mem columns key) then begin
        Hashtbl.replace columns key ();
        rev_columns := key :: !rev_columns
      end;
      let t_us = Time.to_us s.Registry.at in
      if not (Hashtbl.mem rows t_us) then begin
        Hashtbl.replace rows t_us (Hashtbl.create 16);
        rev_times := t_us :: !rev_times
      end;
      Hashtbl.replace (Hashtbl.find rows t_us) key s.Registry.value)
    samples;
  let columns = List.rev !rev_columns in
  let times = List.rev !rev_times in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (String.concat "," ("time_ms" :: List.map csv_cell columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun t_us ->
      let row = Hashtbl.find rows t_us in
      let cells =
        Printf.sprintf "%.3f" (float_of_int t_us /. 1000.)
        :: List.map
             (fun key ->
               match Hashtbl.find_opt row key with
               | Some v -> Printf.sprintf "%.6g" v
               | None -> "")
             columns
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    times;
  Buffer.contents buf

(* Long format: one sample per row. Immune to the wide pivot's column
   explosion (a 1000-site run has tens of thousands of series, which as
   wide columns produce megabyte header lines and rows that are almost
   entirely commas). *)
let series_csv_long registry =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_ms,name,labels,value\n";
  List.iter
    (fun (s : Registry.sample) ->
      let labels =
        String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) s.Registry.labels)
      in
      Buffer.add_string buf
        (Printf.sprintf "%.3f,%s,%s,%.6g\n"
           (float_of_int (Time.to_us s.Registry.at) /. 1000.)
           (csv_cell s.Registry.name) (csv_cell labels) s.Registry.value))
    (Registry.samples registry);
  Buffer.contents buf

let wide_series_limit = 256

let metrics_csv ?wide registry =
  let wide =
    match wide with
    | Some w -> w
    | None -> Registry.n_series registry <= wide_series_limit
  in
  if wide then series_csv registry else series_csv_long registry

let write_file ~path contents =
  let oc = Out_channel.open_text path in
  Fun.protect
    ~finally:(fun () -> Out_channel.close oc)
    (fun () -> Out_channel.output_string oc contents)
