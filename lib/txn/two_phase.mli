(** Primary-copy two-phase commit state machines (§3.3, Immediate Update).

    The paper's Immediate Update: the requesting accelerator coordinates;
    it locks locally, sends lock/prepare requests to every other site
    simultaneously, collects ready votes, broadcasts the decision, and
    "judges the completion of the update with the message from the
    accelerator at the base" — i.e. user-visible completion is the base
    site's acknowledgement, while lock cleanup waits for all of them.

    Both roles are pure state machines: they receive events and return
    actions for the embedding site to execute (send messages, apply or
    revert the operation). This keeps the protocol logic independently
    testable from networking and storage. *)

type decision = Commit | Abort

val pp_decision : Format.formatter -> decision -> unit

type vote = Ready | Refuse

val pp_vote : Format.formatter -> vote -> unit

module Coordinator : sig
  type t

  type action =
    | Broadcast_prepare  (** send prepare to every participant *)
    | Broadcast_decision of decision
    | Completed of decision
        (** report completion to the user (base has acknowledged) *)
    | Cleanup of decision  (** all acks received; release local resources *)

  val create : txid:int -> participants:Avdb_net.Address.t list -> base:Avdb_net.Address.t -> t
  (** [participants] are the remote sites (coordinator excluded). [base]
      is the site whose decision-ack signals user-visible completion; if
      [base] is not among the participants (the coordinator {e is} the
      base), completion coincides with the decision. *)

  val txid : t -> int

  val start : t -> local_vote:vote -> action list
  (** Feeds the coordinator's own (local) vote and starts the protocol.
      With no remote participants the transaction decides immediately. *)

  val on_vote : t -> from:Avdb_net.Address.t -> vote -> action list
  (** Duplicate or unknown votes are ignored. A [Refuse] decides [Abort]
      without waiting for stragglers. *)

  val on_vote_timeout : t -> action list
  (** The prepare phase expired: decide [Abort] if still undecided. *)

  val on_ack : t -> from:Avdb_net.Address.t -> action list
  (** Acknowledgement of the decision. Emits [Completed] when the base
      acks (once) and [Cleanup] when everyone has. *)

  val on_ack_timeout : t -> action list
  (** Give up waiting for decision acks: emits the pending [Completed]
      (if the base never acked) and [Cleanup]. *)

  val recovered :
    txid:int ->
    participants:Avdb_net.Address.t list ->
    base:Avdb_net.Address.t ->
    decision ->
    t
  (** Rebuilds a coordinator from its durably-logged decision after a
      crash: the machine restarts in the ack-collection phase (acks are
      not logged, so the round restarts from scratch) and [Completed] is
      already considered emitted — the submitting client died with the
      crashed incarnation, so recovery must never fire its continuation. *)

  val rebroadcast : t -> action list
  (** [Broadcast_decision] again while acks are still outstanding; []
      once done. Recovery drives this until every ack arrives. *)

  val decision : t -> decision option
  val is_done : t -> bool
end

module Participant : sig
  type t

  (** What the embedding site must do with the tentatively-applied
      operation. *)
  type action = Apply | Revert | Ignore

  val create : unit -> t

  val on_prepare : t -> txid:int -> can_apply:bool -> vote
  (** Registers the transaction and votes. [can_apply = false] (lock or
      validation failure) votes [Refuse] and forgets the txid. A repeated
      prepare for a known txid re-votes identically (idempotent). *)

  val on_decision : t -> txid:int -> decision -> action
  (** [Ignore] for unknown transactions (e.g. refused earlier, or a
      duplicate decision). *)

  val pending : t -> int list
  (** Transactions prepared but undecided, sorted. *)

  val forget : t -> txid:int -> unit
  (** Drop one registration (e.g. a refused or stale txid). Prepared
      transactions must {e not} be forgotten unilaterally — they resolve
      through the termination protocol.  *)

  val reset : t -> unit
  (** Fresh incarnation after a crash: clears every registration.
      Recovery re-installs the prepared (in-doubt) ones from the durable
      transaction log before processing any new message. *)
end
