(** Durable protocol log of distributed transactions at one site.

    Append-only, mirroring the storage WAL's discipline: a protocol state
    transition is logged {e before} the site acts on it, and the
    queryable entry table is an index rebuilt by replaying records. The
    log survives a crash (it is the durable medium in the simulation, as
    the WAL is for table state), so {!Site.recover} can re-install
    in-doubt 2PC state instead of dropping it:

    - [Start] — coordinator side: logged before the prepare broadcast;
      participant side: logged at the moment of voting Ready (the
      "prepared" record). Carries the full cohort so a recovered
      participant knows whom to ask during cooperative termination.
    - [Outcome] — the commit/abort decision. A coordinator logs it
      before broadcasting (presumed abort depends on "no outcome record
      => never committed"); a participant logs it when finalising.
    - [End] — coordinator only: every decision ack arrived, the
      coordination is closed; recovery does not re-broadcast ended txns.
    - [Refused] — a cooperative-termination pledge: this site has not
      voted Ready for the txid and promises to refuse any (late) prepare
      for it, which lets a fellow in-doubt participant presume abort. *)

(** One epoch-quorum write intent: the unit a seal totally orders. *)
type intent = { i_txid : int; i_origin : Avdb_net.Address.t; i_delta : int }

type record =
  | Start of {
      txid : int;
      coordinator : Avdb_net.Address.t;
      cohort : Avdb_net.Address.t list;
      item : string;
      delta : int;
      at : Avdb_sim.Time.t;
    }
  | Outcome of { txid : int; decision : Two_phase.decision; at : Avdb_sim.Time.t }
  | End of { txid : int; at : Avdb_sim.Time.t }
  | Refused of { txid : int; at : Avdb_sim.Time.t }
  | Intent of {
      txid : int;
      origin : Avdb_net.Address.t;
      item : string;
      delta : int;
      at : Avdb_sim.Time.t;
    }
      (** epoch class, writer side: logged before the intent is sent to
          any sequencer, so a crashed writer re-sends on recovery *)
  | Epoch_accept of {
      item : string;
      epoch : int;
      ballot : int;
      seal : intent list;
      at : Avdb_sim.Time.t;
    }
      (** epoch class, acceptor side: a promise-and-accept of one
          proposal — logged before the ack, so quorum intersection holds
          across crashes *)
  | Epoch_seal of { item : string; epoch : int; seal : intent list; at : Avdb_sim.Time.t }
      (** epoch class: the sealed decision, logged in the same atomic
          event as applying its deltas locally *)
  | Epoch_promise of { item : string; epoch : int; ballot : int; at : Avdb_sim.Time.t }
      (** epoch class, acceptor side: a phase-1 promise granted to a
          takeover candidate without accepting a value yet — durable so a
          crashed acceptor cannot later accept a lower ballot *)
  | Epoch_floor of { item : string; epoch : int; at : Avdb_sim.Time.t }
      (** epoch class: state through this epoch was installed from a
          snapshot (join or quarantine repair), so this log holds no seals
          at or below it; {!max_contiguous_seal} counts from here *)

type entry = {
  txid : int;
  coordinator : Avdb_net.Address.t;
  cohort : Avdb_net.Address.t list;
      (** every site involved, coordinator included; [] if unknown *)
  item : string;
  delta : int;
  started_at : Avdb_sim.Time.t;
  mutable outcome : Two_phase.decision option;
  mutable finished_at : Avdb_sim.Time.t option;
  mutable ended : bool;  (** coordinator: all acks received *)
}

type t

val create : unit -> t

val record_start :
  t ->
  txid:int ->
  coordinator:Avdb_net.Address.t ->
  cohort:Avdb_net.Address.t list ->
  item:string ->
  delta:int ->
  at:Avdb_sim.Time.t ->
  unit
(** Raises [Invalid_argument] on a duplicate txid. *)

val record_outcome : t -> txid:int -> Two_phase.decision -> at:Avdb_sim.Time.t -> unit
(** Idempotent: only the first outcome is kept. Unknown txids are
    ignored (the prepare may have been refused before logging). *)

val record_end : t -> txid:int -> at:Avdb_sim.Time.t -> unit
(** Idempotent; unknown txids ignored. *)

val record_refused : t -> txid:int -> at:Avdb_sim.Time.t -> unit
(** Pledge never to vote Ready for [txid]. Idempotent. *)

(** {2 Epoch-quorum commit records} *)

type intent_entry = {
  in_txid : int;
  in_origin : Avdb_net.Address.t;
  in_item : string;
  in_delta : int;
  in_at : Avdb_sim.Time.t;
  mutable in_sealed : bool;  (** a logged seal contains this txid *)
}

val record_intent :
  t ->
  txid:int ->
  origin:Avdb_net.Address.t ->
  item:string ->
  delta:int ->
  at:Avdb_sim.Time.t ->
  unit
(** Idempotent on txid. *)

val record_epoch_accept :
  t -> item:string -> epoch:int -> ballot:int -> seal:intent list -> at:Avdb_sim.Time.t -> unit
(** Logged only when [ballot] exceeds the highest already accepted for
    (item, epoch); the index keeps the highest-ballot proposal. *)

val record_epoch_seal :
  t -> item:string -> epoch:int -> seal:intent list -> at:Avdb_sim.Time.t -> unit
(** Idempotent per (item, epoch). Marks every contained intent of this
    log as sealed. *)

val record_epoch_promise :
  t -> item:string -> epoch:int -> ballot:int -> at:Avdb_sim.Time.t -> unit
(** Logged only when [ballot] exceeds the highest already promised. *)

val record_epoch_floor : t -> item:string -> epoch:int -> at:Avdb_sim.Time.t -> unit
(** Logged only when [epoch] exceeds the current floor. *)

val find_intent : t -> txid:int -> intent_entry option
val intent_sealed : t -> txid:int -> bool

val intents : t -> intent_entry list
(** Sorted by txid. *)

val unsealed_intents : t -> intent_entry list
(** Intents no logged seal contains yet — the epoch class's in-doubt set,
    re-sent by recovery and counted by the quiescence invariant. *)

val epoch_accept : t -> item:string -> epoch:int -> (int * intent list) option
(** Highest-ballot accepted proposal for the epoch, as (ballot, seal). *)

val epoch_seal : t -> item:string -> epoch:int -> intent list option

val epoch_promise : t -> item:string -> epoch:int -> int
(** Highest ballot durably promised for (item, epoch), counting both
    promise-only and accept records; 0 when none. *)

val epoch_floor : t -> item:string -> int
(** The snapshot-install floor for [item]; 0 when none. *)

val epoch_seals : t -> (string * int * intent list) list
(** Every sealed (item, epoch, seal), sorted — the sealed-epoch agreement
    probe compares these across sites. *)

val max_contiguous_seal : t -> item:string -> int
(** Highest epoch e with seals floor+1..e all present — the applied
    prefix a recovering subscriber can trust (seals are logged atomically
    with their local apply, in epoch order). The floor on a fresh log is
    0. *)

val find : t -> txid:int -> entry option
val is_refused : t -> txid:int -> bool

val entries : t -> entry list
(** Sorted by txid. *)

val in_doubt : t -> entry list
(** Entries with no outcome yet, sorted by txid — the set recovery must
    re-install. *)

val committed : t -> int
val aborted : t -> int
val in_flight : t -> int

val max_txid : t -> int
(** Largest txid ever started here, or [-1] on an empty log — recovery
    re-seeds the txid allocator above it. *)

(** {2 Serialisation}

    One record per text line, replayable with {!of_string}; the same
    torn-tail rule as the WAL applies. *)

val records : t -> record list
(** In append order. *)

val length : t -> int
val encode_record : record -> string
val decode_record : string -> (record, string) result
val to_string : t -> string

val of_string : string -> (t, Avdb_store.Corruption.t) result
(** Replays a serialised log. An undecodable {e final} line is treated
    as a tail torn by a crash mid-append and dropped (the prefix is
    recovered); an undecodable line anywhere else is corruption and
    fails with its byte offset. *)

val pp_record : Format.formatter -> record -> unit
