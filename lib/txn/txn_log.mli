(** Durable protocol log of distributed transactions at one site.

    Append-only, mirroring the storage WAL's discipline: a protocol state
    transition is logged {e before} the site acts on it, and the
    queryable entry table is an index rebuilt by replaying records. The
    log survives a crash (it is the durable medium in the simulation, as
    the WAL is for table state), so {!Site.recover} can re-install
    in-doubt 2PC state instead of dropping it:

    - [Start] — coordinator side: logged before the prepare broadcast;
      participant side: logged at the moment of voting Ready (the
      "prepared" record). Carries the full cohort so a recovered
      participant knows whom to ask during cooperative termination.
    - [Outcome] — the commit/abort decision. A coordinator logs it
      before broadcasting (presumed abort depends on "no outcome record
      => never committed"); a participant logs it when finalising.
    - [End] — coordinator only: every decision ack arrived, the
      coordination is closed; recovery does not re-broadcast ended txns.
    - [Refused] — a cooperative-termination pledge: this site has not
      voted Ready for the txid and promises to refuse any (late) prepare
      for it, which lets a fellow in-doubt participant presume abort. *)

type record =
  | Start of {
      txid : int;
      coordinator : Avdb_net.Address.t;
      cohort : Avdb_net.Address.t list;
      item : string;
      delta : int;
      at : Avdb_sim.Time.t;
    }
  | Outcome of { txid : int; decision : Two_phase.decision; at : Avdb_sim.Time.t }
  | End of { txid : int; at : Avdb_sim.Time.t }
  | Refused of { txid : int; at : Avdb_sim.Time.t }

type entry = {
  txid : int;
  coordinator : Avdb_net.Address.t;
  cohort : Avdb_net.Address.t list;
      (** every site involved, coordinator included; [] if unknown *)
  item : string;
  delta : int;
  started_at : Avdb_sim.Time.t;
  mutable outcome : Two_phase.decision option;
  mutable finished_at : Avdb_sim.Time.t option;
  mutable ended : bool;  (** coordinator: all acks received *)
}

type t

val create : unit -> t

val record_start :
  t ->
  txid:int ->
  coordinator:Avdb_net.Address.t ->
  cohort:Avdb_net.Address.t list ->
  item:string ->
  delta:int ->
  at:Avdb_sim.Time.t ->
  unit
(** Raises [Invalid_argument] on a duplicate txid. *)

val record_outcome : t -> txid:int -> Two_phase.decision -> at:Avdb_sim.Time.t -> unit
(** Idempotent: only the first outcome is kept. Unknown txids are
    ignored (the prepare may have been refused before logging). *)

val record_end : t -> txid:int -> at:Avdb_sim.Time.t -> unit
(** Idempotent; unknown txids ignored. *)

val record_refused : t -> txid:int -> at:Avdb_sim.Time.t -> unit
(** Pledge never to vote Ready for [txid]. Idempotent. *)

val find : t -> txid:int -> entry option
val is_refused : t -> txid:int -> bool

val entries : t -> entry list
(** Sorted by txid. *)

val in_doubt : t -> entry list
(** Entries with no outcome yet, sorted by txid — the set recovery must
    re-install. *)

val committed : t -> int
val aborted : t -> int
val in_flight : t -> int

val max_txid : t -> int
(** Largest txid ever started here, or [-1] on an empty log — recovery
    re-seeds the txid allocator above it. *)

(** {2 Serialisation}

    One record per text line, replayable with {!of_string}; the same
    torn-tail rule as the WAL applies. *)

val records : t -> record list
(** In append order. *)

val length : t -> int
val encode_record : record -> string
val decode_record : string -> (record, string) result
val to_string : t -> string

val of_string : string -> (t, Avdb_store.Corruption.t) result
(** Replays a serialised log. An undecodable {e final} line is treated
    as a tail torn by a crash mid-append and dropped (the prefix is
    recovered); an undecodable line anywhere else is corruption and
    fails with its byte offset. *)

val pp_record : Format.formatter -> record -> unit
