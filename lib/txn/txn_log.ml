open Avdb_sim
open Avdb_net

(* The protocol log is append-only, like the storage WAL: every state
   transition of the commit protocol is a record, and the queryable
   entry table is just an index rebuilt by replay. The log object (like
   the WAL) survives a simulated crash — serialisation exists so the
   same bytes could sit on disk. *)

(* One write intent of the epoch-quorum commit class: what a writer logs
   durably before telling any sequencer, and what a seal totally orders. *)
type intent = { i_txid : int; i_origin : Address.t; i_delta : int }

type record =
  | Start of {
      txid : int;
      coordinator : Address.t;
      cohort : Address.t list;
      item : string;
      delta : int;
      at : Time.t;
    }
  | Outcome of { txid : int; decision : Two_phase.decision; at : Time.t }
  | End of { txid : int; at : Time.t }
  | Refused of { txid : int; at : Time.t }
  | Intent of { txid : int; origin : Address.t; item : string; delta : int; at : Time.t }
  | Epoch_accept of {
      item : string;
      epoch : int;
      ballot : int;
      seal : intent list;
      at : Time.t;
    }
  | Epoch_seal of { item : string; epoch : int; seal : intent list; at : Time.t }
  | Epoch_promise of { item : string; epoch : int; ballot : int; at : Time.t }
  | Epoch_floor of { item : string; epoch : int; at : Time.t }

type entry = {
  txid : int;
  coordinator : Address.t;
  cohort : Address.t list;
  item : string;
  delta : int;
  started_at : Time.t;
  mutable outcome : Two_phase.decision option;
  mutable finished_at : Time.t option;
  mutable ended : bool;
}

type intent_entry = {
  in_txid : int;
  in_origin : Address.t;
  in_item : string;
  in_delta : int;
  in_at : Time.t;
  mutable in_sealed : bool;
      (* set once a logged seal (any epoch) contains this txid — the
         intent's doubt is resolved and the pump stops re-sending it *)
}

type t = {
  mutable records : record list;  (* newest-first for O(1) append *)
  mutable count : int;
  entries : (int, entry) Hashtbl.t;
  refused : (int, unit) Hashtbl.t;
  intents : (int, intent_entry) Hashtbl.t;
  accepts : (string * int, int * intent list) Hashtbl.t;
      (* (item, epoch) -> highest-ballot accepted proposal *)
  seals : (string * int, intent list) Hashtbl.t;
  promises : (string * int, int) Hashtbl.t;
      (* (item, epoch) -> highest ballot durably promised *)
  floors : (string, int) Hashtbl.t;
      (* item -> epoch below which this log holds no seals because the
         state was installed from a snapshot (join or quarantine repair) *)
}

let create () =
  {
    records = [];
    count = 0;
    entries = Hashtbl.create 32;
    refused = Hashtbl.create 8;
    intents = Hashtbl.create 8;
    accepts = Hashtbl.create 8;
    seals = Hashtbl.create 8;
    promises = Hashtbl.create 8;
    floors = Hashtbl.create 4;
  }

let records t = List.rev t.records
let length t = t.count

let push t r =
  t.records <- r :: t.records;
  t.count <- t.count + 1

(* Index maintenance shared by live appends and replay. *)
let index t = function
  | Start { txid; coordinator; cohort; item; delta; at } ->
      if Hashtbl.mem t.entries txid then invalid_arg "Txn_log.record_start: duplicate txid";
      Hashtbl.add t.entries txid
        {
          txid;
          coordinator;
          cohort;
          item;
          delta;
          started_at = at;
          outcome = None;
          finished_at = None;
          ended = false;
        }
  | Outcome { txid; decision; at } -> (
      match Hashtbl.find_opt t.entries txid with
      | None -> ()
      | Some e ->
          if e.outcome = None then begin
            e.outcome <- Some decision;
            e.finished_at <- Some at
          end)
  | End { txid; _ } -> (
      match Hashtbl.find_opt t.entries txid with
      | None -> ()
      | Some e -> e.ended <- true)
  | Refused { txid; _ } -> Hashtbl.replace t.refused txid ()
  | Intent { txid; origin; item; delta; at } ->
      if not (Hashtbl.mem t.intents txid) then
        Hashtbl.add t.intents txid
          {
            in_txid = txid;
            in_origin = origin;
            in_item = item;
            in_delta = delta;
            in_at = at;
            in_sealed = false;
          }
  | Epoch_accept { item; epoch; ballot; seal; _ } -> (
      match Hashtbl.find_opt t.accepts (item, epoch) with
      | Some (b, _) when b >= ballot -> ()
      | Some _ | None -> Hashtbl.replace t.accepts (item, epoch) (ballot, seal))
  | Epoch_seal { item; epoch; seal; _ } ->
      Hashtbl.replace t.seals (item, epoch) seal;
      List.iter
        (fun i ->
          match Hashtbl.find_opt t.intents i.i_txid with
          | Some e -> e.in_sealed <- true
          | None -> ())
        seal
  | Epoch_promise { item; epoch; ballot; _ } -> (
      match Hashtbl.find_opt t.promises (item, epoch) with
      | Some b when b >= ballot -> ()
      | Some _ | None -> Hashtbl.replace t.promises (item, epoch) ballot)
  | Epoch_floor { item; epoch; _ } -> (
      match Hashtbl.find_opt t.floors item with
      | Some f when f >= epoch -> ()
      | Some _ | None -> Hashtbl.replace t.floors item epoch)

let append t r =
  index t r;
  push t r

let record_start t ~txid ~coordinator ~cohort ~item ~delta ~at =
  append t (Start { txid; coordinator; cohort; item; delta; at })

let record_outcome t ~txid outcome ~at =
  (* Idempotent: only the first outcome is durable. Unknown txids are
     ignored (the prepare may have been refused before logging). *)
  match Hashtbl.find_opt t.entries txid with
  | Some e when e.outcome = None -> append t (Outcome { txid; decision = outcome; at })
  | Some _ | None -> ()

let record_end t ~txid ~at =
  match Hashtbl.find_opt t.entries txid with
  | Some e when not e.ended -> append t (End { txid; at })
  | Some _ | None -> ()

let record_refused t ~txid ~at =
  if not (Hashtbl.mem t.refused txid) then append t (Refused { txid; at })

(* --- epoch-quorum commit records --- *)

let record_intent t ~txid ~origin ~item ~delta ~at =
  if not (Hashtbl.mem t.intents txid) then
    append t (Intent { txid; origin; item; delta; at })

let record_epoch_accept t ~item ~epoch ~ballot ~seal ~at =
  match Hashtbl.find_opt t.accepts (item, epoch) with
  | Some (b, _) when b >= ballot -> ()
  | Some _ | None -> append t (Epoch_accept { item; epoch; ballot; seal; at })

let record_epoch_seal t ~item ~epoch ~seal ~at =
  if not (Hashtbl.mem t.seals (item, epoch)) then
    append t (Epoch_seal { item; epoch; seal; at })

let record_epoch_promise t ~item ~epoch ~ballot ~at =
  match Hashtbl.find_opt t.promises (item, epoch) with
  | Some b when b >= ballot -> ()
  | Some _ | None -> append t (Epoch_promise { item; epoch; ballot; at })

let record_epoch_floor t ~item ~epoch ~at =
  match Hashtbl.find_opt t.floors item with
  | Some f when f >= epoch -> ()
  | Some _ | None -> append t (Epoch_floor { item; epoch; at })

let find_intent t ~txid = Hashtbl.find_opt t.intents txid
let intent_sealed t ~txid =
  match Hashtbl.find_opt t.intents txid with Some e -> e.in_sealed | None -> false

let intents t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.intents []
  |> List.sort (fun a b -> compare a.in_txid b.in_txid)

let unsealed_intents t = List.filter (fun e -> not e.in_sealed) (intents t)

let epoch_accept t ~item ~epoch = Hashtbl.find_opt t.accepts (item, epoch)
let epoch_seal t ~item ~epoch = Hashtbl.find_opt t.seals (item, epoch)

let epoch_promise t ~item ~epoch =
  let promised = Option.value ~default:0 (Hashtbl.find_opt t.promises (item, epoch)) in
  match Hashtbl.find_opt t.accepts (item, epoch) with
  | Some (b, _) -> Stdlib.max promised b
  | None -> promised

let epoch_floor t ~item = Option.value ~default:0 (Hashtbl.find_opt t.floors item)

let epoch_seals t =
  Hashtbl.fold (fun (item, epoch) seal acc -> (item, epoch, seal) :: acc) t.seals []
  |> List.sort (fun (a, e, _) (b, f, _) ->
         match String.compare a b with 0 -> compare e f | c -> c)

(* Highest epoch with every seal from 1 up to it present — the prefix a
   recovering subscriber can trust it applied (seals are logged in the
   same atomic event as their local apply, in epoch order). *)
let max_contiguous_seal t ~item =
  let rec loop e = if Hashtbl.mem t.seals (item, e + 1) then loop (e + 1) else e in
  loop (epoch_floor t ~item)

let find t ~txid = Hashtbl.find_opt t.entries txid
let is_refused t ~txid = Hashtbl.mem t.refused txid

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> compare a.txid b.txid)

let in_doubt t = List.filter (fun e -> e.outcome = None) (entries t)

let count p t = Hashtbl.fold (fun _ e acc -> if p e then acc + 1 else acc) t.entries 0
let committed t = count (fun e -> e.outcome = Some Two_phase.Commit) t
let aborted t = count (fun e -> e.outcome = Some Two_phase.Abort) t
let in_flight t = count (fun e -> e.outcome = None) t

let max_txid t = Hashtbl.fold (fun txid _ acc -> Stdlib.max txid acc) t.entries (-1)

(* --- encoding ---

   One record per line, '|'-separated fields; the item is hex-escaped
   through Value-style encoding in the WAL, here it is percent-free
   already but we escape '|' and newline defensively. *)

let enc_str s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '|' | '%' | '\n' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dec_str s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec loop i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 < n then begin
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
            Buffer.add_char buf (Char.chr code);
            loop (i + 3)
        | None -> Error ("bad escape in " ^ s)
      end
      else Error ("truncated escape in " ^ s)
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let enc_cohort cohort =
  String.concat "," (List.map (fun a -> string_of_int (Address.to_int a)) cohort)

let dec_cohort s =
  if s = "" then Ok []
  else
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with
          | Some n -> loop (Address.of_int n :: acc) rest
          | None -> Error ("bad cohort member " ^ p))
    in
    loop [] (String.split_on_char ',' s)

let enc_decision = function Two_phase.Commit -> "C" | Two_phase.Abort -> "A"

let dec_decision = function
  | "C" -> Ok Two_phase.Commit
  | "A" -> Ok Two_phase.Abort
  | s -> Error ("bad decision " ^ s)

(* A seal is a comma-separated list of txid:origin:delta triples — all
   ints, so no escaping interacts with the '|' field separator. *)
let enc_seal seal =
  String.concat ","
    (List.map
       (fun i ->
         Printf.sprintf "%d:%d:%d" i.i_txid (Address.to_int i.i_origin) i.i_delta)
       seal)

let dec_seal s =
  if s = "" then Ok []
  else
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | triple :: rest -> (
          match String.split_on_char ':' triple with
          | [ txid; origin; delta ] -> (
              match
                (int_of_string_opt txid, int_of_string_opt origin, int_of_string_opt delta)
              with
              | Some i_txid, Some origin, Some i_delta ->
                  loop ({ i_txid; i_origin = Address.of_int origin; i_delta } :: acc) rest
              | _ -> Error ("bad seal intent " ^ triple))
          | _ -> Error ("bad seal intent " ^ triple))
    in
    loop [] (String.split_on_char ',' s)

let encode_record = function
  | Start { txid; coordinator; cohort; item; delta; at } ->
      Printf.sprintf "S|%d|%d|%s|%s|%d|%d" txid
        (Address.to_int coordinator)
        (enc_cohort cohort) (enc_str item) delta (Time.to_us at)
  | Outcome { txid; decision; at } ->
      Printf.sprintf "O|%d|%s|%d" txid (enc_decision decision) (Time.to_us at)
  | End { txid; at } -> Printf.sprintf "E|%d|%d" txid (Time.to_us at)
  | Refused { txid; at } -> Printf.sprintf "R|%d|%d" txid (Time.to_us at)
  | Intent { txid; origin; item; delta; at } ->
      Printf.sprintf "I|%d|%d|%s|%d|%d" txid (Address.to_int origin) (enc_str item) delta
        (Time.to_us at)
  | Epoch_accept { item; epoch; ballot; seal; at } ->
      Printf.sprintf "A|%s|%d|%d|%s|%d" (enc_str item) epoch ballot (enc_seal seal)
        (Time.to_us at)
  | Epoch_seal { item; epoch; seal; at } ->
      Printf.sprintf "L|%s|%d|%s|%d" (enc_str item) epoch (enc_seal seal) (Time.to_us at)
  | Epoch_promise { item; epoch; ballot; at } ->
      Printf.sprintf "P|%s|%d|%d|%d" (enc_str item) epoch ballot (Time.to_us at)
  | Epoch_floor { item; epoch; at } ->
      Printf.sprintf "F|%s|%d|%d" (enc_str item) epoch (Time.to_us at)

let ( let* ) = Result.bind

let int_field s =
  match int_of_string_opt s with Some n -> Ok n | None -> Error ("bad int " ^ s)

let decode_record line =
  match String.split_on_char '|' line with
  | [ "S"; txid; coordinator; cohort; item; delta; at ] ->
      let* txid = int_field txid in
      let* coordinator = Result.map Address.of_int (int_field coordinator) in
      let* cohort = dec_cohort cohort in
      let* item = dec_str item in
      let* delta = int_field delta in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Start { txid; coordinator; cohort; item; delta; at })
  | [ "O"; txid; decision; at ] ->
      let* txid = int_field txid in
      let* decision = dec_decision decision in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Outcome { txid; decision; at })
  | [ "E"; txid; at ] ->
      let* txid = int_field txid in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (End { txid; at })
  | [ "R"; txid; at ] ->
      let* txid = int_field txid in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Refused { txid; at })
  | [ "I"; txid; origin; item; delta; at ] ->
      let* txid = int_field txid in
      let* origin = Result.map Address.of_int (int_field origin) in
      let* item = dec_str item in
      let* delta = int_field delta in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Intent { txid; origin; item; delta; at })
  | [ "A"; item; epoch; ballot; seal; at ] ->
      let* item = dec_str item in
      let* epoch = int_field epoch in
      let* ballot = int_field ballot in
      let* seal = dec_seal seal in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Epoch_accept { item; epoch; ballot; seal; at })
  | [ "L"; item; epoch; seal; at ] ->
      let* item = dec_str item in
      let* epoch = int_field epoch in
      let* seal = dec_seal seal in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Epoch_seal { item; epoch; seal; at })
  | [ "P"; item; epoch; ballot; at ] ->
      let* item = dec_str item in
      let* epoch = int_field epoch in
      let* ballot = int_field ballot in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Epoch_promise { item; epoch; ballot; at })
  | [ "F"; item; epoch; at ] ->
      let* item = dec_str item in
      let* epoch = int_field epoch in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Epoch_floor { item; epoch; at })
  | _ -> Error ("Txn_log.decode_record: malformed line " ^ line)

let to_string t = String.concat "\n" (List.map encode_record (records t))

(* Like {!Wal.of_string}: an undecodable final line is a torn tail from a
   crash mid-append — recover the prefix. Mid-log corruption still fails,
   located by byte offset for file:offset error context. *)
let of_string s =
  let t = create () in
  let lines = if s = "" then [] else String.split_on_char '\n' s in
  let rec loop offset = function
    | [] -> Ok t
    | line :: rest -> (
        match decode_record line with
        | Ok r ->
            append t r;
            loop (offset + String.length line + 1) rest
        | Error _ when rest = [] -> Ok t
        | Error e -> Error (Avdb_store.Corruption.v ~segment:0 ~offset e))
  in
  loop 0 lines

let pp_record ppf r = Format.pp_print_string ppf (encode_record r)
