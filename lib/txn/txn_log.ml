open Avdb_sim
open Avdb_net

(* The protocol log is append-only, like the storage WAL: every state
   transition of the commit protocol is a record, and the queryable
   entry table is just an index rebuilt by replay. The log object (like
   the WAL) survives a simulated crash — serialisation exists so the
   same bytes could sit on disk. *)

type record =
  | Start of {
      txid : int;
      coordinator : Address.t;
      cohort : Address.t list;
      item : string;
      delta : int;
      at : Time.t;
    }
  | Outcome of { txid : int; decision : Two_phase.decision; at : Time.t }
  | End of { txid : int; at : Time.t }
  | Refused of { txid : int; at : Time.t }

type entry = {
  txid : int;
  coordinator : Address.t;
  cohort : Address.t list;
  item : string;
  delta : int;
  started_at : Time.t;
  mutable outcome : Two_phase.decision option;
  mutable finished_at : Time.t option;
  mutable ended : bool;
}

type t = {
  mutable records : record list;  (* newest-first for O(1) append *)
  mutable count : int;
  entries : (int, entry) Hashtbl.t;
  refused : (int, unit) Hashtbl.t;
}

let create () =
  { records = []; count = 0; entries = Hashtbl.create 32; refused = Hashtbl.create 8 }

let records t = List.rev t.records
let length t = t.count

let push t r =
  t.records <- r :: t.records;
  t.count <- t.count + 1

(* Index maintenance shared by live appends and replay. *)
let index t = function
  | Start { txid; coordinator; cohort; item; delta; at } ->
      if Hashtbl.mem t.entries txid then invalid_arg "Txn_log.record_start: duplicate txid";
      Hashtbl.add t.entries txid
        {
          txid;
          coordinator;
          cohort;
          item;
          delta;
          started_at = at;
          outcome = None;
          finished_at = None;
          ended = false;
        }
  | Outcome { txid; decision; at } -> (
      match Hashtbl.find_opt t.entries txid with
      | None -> ()
      | Some e ->
          if e.outcome = None then begin
            e.outcome <- Some decision;
            e.finished_at <- Some at
          end)
  | End { txid; _ } -> (
      match Hashtbl.find_opt t.entries txid with
      | None -> ()
      | Some e -> e.ended <- true)
  | Refused { txid; _ } -> Hashtbl.replace t.refused txid ()

let append t r =
  index t r;
  push t r

let record_start t ~txid ~coordinator ~cohort ~item ~delta ~at =
  append t (Start { txid; coordinator; cohort; item; delta; at })

let record_outcome t ~txid outcome ~at =
  (* Idempotent: only the first outcome is durable. Unknown txids are
     ignored (the prepare may have been refused before logging). *)
  match Hashtbl.find_opt t.entries txid with
  | Some e when e.outcome = None -> append t (Outcome { txid; decision = outcome; at })
  | Some _ | None -> ()

let record_end t ~txid ~at =
  match Hashtbl.find_opt t.entries txid with
  | Some e when not e.ended -> append t (End { txid; at })
  | Some _ | None -> ()

let record_refused t ~txid ~at =
  if not (Hashtbl.mem t.refused txid) then append t (Refused { txid; at })

let find t ~txid = Hashtbl.find_opt t.entries txid
let is_refused t ~txid = Hashtbl.mem t.refused txid

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> compare a.txid b.txid)

let in_doubt t = List.filter (fun e -> e.outcome = None) (entries t)

let count p t = Hashtbl.fold (fun _ e acc -> if p e then acc + 1 else acc) t.entries 0
let committed t = count (fun e -> e.outcome = Some Two_phase.Commit) t
let aborted t = count (fun e -> e.outcome = Some Two_phase.Abort) t
let in_flight t = count (fun e -> e.outcome = None) t

let max_txid t = Hashtbl.fold (fun txid _ acc -> Stdlib.max txid acc) t.entries (-1)

(* --- encoding ---

   One record per line, '|'-separated fields; the item is hex-escaped
   through Value-style encoding in the WAL, here it is percent-free
   already but we escape '|' and newline defensively. *)

let enc_str s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '|' | '%' | '\n' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dec_str s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec loop i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 < n then begin
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
            Buffer.add_char buf (Char.chr code);
            loop (i + 3)
        | None -> Error ("bad escape in " ^ s)
      end
      else Error ("truncated escape in " ^ s)
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let enc_cohort cohort =
  String.concat "," (List.map (fun a -> string_of_int (Address.to_int a)) cohort)

let dec_cohort s =
  if s = "" then Ok []
  else
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with
          | Some n -> loop (Address.of_int n :: acc) rest
          | None -> Error ("bad cohort member " ^ p))
    in
    loop [] (String.split_on_char ',' s)

let enc_decision = function Two_phase.Commit -> "C" | Two_phase.Abort -> "A"

let dec_decision = function
  | "C" -> Ok Two_phase.Commit
  | "A" -> Ok Two_phase.Abort
  | s -> Error ("bad decision " ^ s)

let encode_record = function
  | Start { txid; coordinator; cohort; item; delta; at } ->
      Printf.sprintf "S|%d|%d|%s|%s|%d|%d" txid
        (Address.to_int coordinator)
        (enc_cohort cohort) (enc_str item) delta (Time.to_us at)
  | Outcome { txid; decision; at } ->
      Printf.sprintf "O|%d|%s|%d" txid (enc_decision decision) (Time.to_us at)
  | End { txid; at } -> Printf.sprintf "E|%d|%d" txid (Time.to_us at)
  | Refused { txid; at } -> Printf.sprintf "R|%d|%d" txid (Time.to_us at)

let ( let* ) = Result.bind

let int_field s =
  match int_of_string_opt s with Some n -> Ok n | None -> Error ("bad int " ^ s)

let decode_record line =
  match String.split_on_char '|' line with
  | [ "S"; txid; coordinator; cohort; item; delta; at ] ->
      let* txid = int_field txid in
      let* coordinator = Result.map Address.of_int (int_field coordinator) in
      let* cohort = dec_cohort cohort in
      let* item = dec_str item in
      let* delta = int_field delta in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Start { txid; coordinator; cohort; item; delta; at })
  | [ "O"; txid; decision; at ] ->
      let* txid = int_field txid in
      let* decision = dec_decision decision in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Outcome { txid; decision; at })
  | [ "E"; txid; at ] ->
      let* txid = int_field txid in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (End { txid; at })
  | [ "R"; txid; at ] ->
      let* txid = int_field txid in
      let* at = Result.map Time.of_us (int_field at) in
      Ok (Refused { txid; at })
  | _ -> Error ("Txn_log.decode_record: malformed line " ^ line)

let to_string t = String.concat "\n" (List.map encode_record (records t))

(* Like {!Wal.of_string}: an undecodable final line is a torn tail from a
   crash mid-append — recover the prefix. Mid-log corruption still fails,
   located by byte offset for file:offset error context. *)
let of_string s =
  let t = create () in
  let lines = if s = "" then [] else String.split_on_char '\n' s in
  let rec loop offset = function
    | [] -> Ok t
    | line :: rest -> (
        match decode_record line with
        | Ok r ->
            append t r;
            loop (offset + String.length line + 1) rest
        | Error _ when rest = [] -> Ok t
        | Error e -> Error (Avdb_store.Corruption.v ~segment:0 ~offset e))
  in
  loop 0 lines

let pp_record ppf r = Format.pp_print_string ppf (encode_record r)
