open Avdb_net

type decision = Commit | Abort

let pp_decision ppf = function
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"

type vote = Ready | Refuse

let pp_vote ppf = function
  | Ready -> Format.pp_print_string ppf "ready"
  | Refuse -> Format.pp_print_string ppf "refuse"

module Coordinator = struct
  type phase =
    | Init
    | Collecting_votes
    | Collecting_acks of decision
    | Done of decision

  type action =
    | Broadcast_prepare
    | Broadcast_decision of decision
    | Completed of decision
    | Cleanup of decision

  type t = {
    txid : int;
    participants : Address.Set.t;
    base : Address.t;
    mutable phase : phase;
    mutable votes : Address.Set.t;  (* Ready votes received *)
    mutable acks : Address.Set.t;
    mutable local_vote : vote;
    mutable completed_emitted : bool;
  }

  let create ~txid ~participants ~base =
    {
      txid;
      participants = Address.Set.of_list participants;
      base;
      phase = Init;
      votes = Address.Set.empty;
      acks = Address.Set.empty;
      local_vote = Ready;
      completed_emitted = false;
    }

  let txid t = t.txid

  (* Completion is user-visible when the base acknowledges the decision.
     When the base is not a remote participant, the coordinator itself is
     the base: completion happens at decision time. *)
  let base_is_remote t = Address.Set.mem t.base t.participants

  let decide t d =
    if Address.Set.is_empty t.participants then begin
      t.phase <- Done d;
      let completed = if t.completed_emitted then [] else [ Completed d ] in
      t.completed_emitted <- true;
      completed @ [ Cleanup d ]
    end
    else begin
      t.phase <- Collecting_acks d;
      let completed =
        if base_is_remote t || t.completed_emitted then []
        else begin
          t.completed_emitted <- true;
          [ Completed d ]
        end
      in
      (Broadcast_decision d :: completed)
    end

  let start t ~local_vote =
    match t.phase with
    | Init ->
        t.local_vote <- local_vote;
        if local_vote = Refuse then decide t Abort
        else if Address.Set.is_empty t.participants then decide t Commit
        else begin
          t.phase <- Collecting_votes;
          [ Broadcast_prepare ]
        end
    | Collecting_votes | Collecting_acks _ | Done _ ->
        invalid_arg "Two_phase.Coordinator.start: already started"

  let on_vote t ~from v =
    match t.phase with
    | Collecting_votes when Address.Set.mem from t.participants -> (
        match v with
        | Refuse -> decide t Abort
        | Ready ->
            t.votes <- Address.Set.add from t.votes;
            if Address.Set.equal t.votes t.participants then decide t Commit else [])
    | Init | Collecting_votes | Collecting_acks _ | Done _ -> []

  let on_vote_timeout t =
    match t.phase with
    | Collecting_votes -> decide t Abort
    | Init | Collecting_acks _ | Done _ -> []

  let finish t d =
    t.phase <- Done d;
    let completed = if t.completed_emitted then [] else [ Completed d ] in
    t.completed_emitted <- true;
    completed @ [ Cleanup d ]

  let on_ack t ~from =
    match t.phase with
    | Collecting_acks d when Address.Set.mem from t.participants ->
        t.acks <- Address.Set.add from t.acks;
        let completed =
          if Address.equal from t.base && not t.completed_emitted then begin
            t.completed_emitted <- true;
            [ Completed d ]
          end
          else []
        in
        if Address.Set.equal t.acks t.participants then completed @ finish t d
        else completed
    | Init | Collecting_votes | Collecting_acks _ | Done _ -> []

  let on_ack_timeout t =
    match t.phase with
    | Collecting_acks d -> finish t d
    | Init | Collecting_votes | Done _ -> []

  (* A coordinator rebuilt from its durable log after a crash: the
     decision is known, nothing about acks is (acks are not logged), so
     restart the ack round from scratch. [Completed] must never fire —
     the submitting client died with the old incarnation. *)
  let recovered ~txid ~participants ~base decision =
    {
      txid;
      participants = Address.Set.of_list participants;
      base;
      phase =
        (if participants = [] then Done decision else Collecting_acks decision);
      votes = Address.Set.empty;
      acks = Address.Set.empty;
      local_vote = Ready;
      completed_emitted = true;
    }

  let rebroadcast t =
    match t.phase with
    | Collecting_acks d -> [ Broadcast_decision d ]
    | Init | Collecting_votes | Done _ -> []

  let decision t =
    match t.phase with
    | Collecting_acks d | Done d -> Some d
    | Init | Collecting_votes -> None

  let is_done t = match t.phase with Done _ -> true | _ -> false
end

module Participant = struct
  type action = Apply | Revert | Ignore

  type t = { prepared : (int, unit) Hashtbl.t }

  let create () = { prepared = Hashtbl.create 16 }

  let on_prepare t ~txid ~can_apply =
    if Hashtbl.mem t.prepared txid then Ready
    else if can_apply then begin
      Hashtbl.add t.prepared txid ();
      Ready
    end
    else Refuse

  let on_decision t ~txid d =
    if not (Hashtbl.mem t.prepared txid) then Ignore
    else begin
      Hashtbl.remove t.prepared txid;
      match d with Commit -> Apply | Abort -> Revert
    end

  let pending t =
    Hashtbl.fold (fun txid () acc -> txid :: acc) t.prepared [] |> List.sort compare

  let forget t ~txid = Hashtbl.remove t.prepared txid

  let reset t = Hashtbl.reset t.prepared
end
