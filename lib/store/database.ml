type undo =
  | Undo_insert of { table : string; key : string }
  | Undo_update of { table : string; key : string; col : string; before : Value.t }
  | Undo_delete of { table : string; key : string; row : Value.t array }

type t = {
  name : string;
  wal : Wal.t;
  tables : (string, Table.t) Hashtbl.t;
  mutable next_txid : int;
  mutable active : int;
}

type txn = { db : t; id : int; mutable undos : undo list; mutable finished : bool }

let create ?(name = "db") () =
  { name; wal = Wal.create (); tables = Hashtbl.create 8; next_txid = 0; active = 0 }

let name t = t.name
let wal t = t.wal

let create_table t ~name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Database.create_table: table exists: " ^ name);
  let table = Table.create ~name schema in
  Hashtbl.add t.tables name table;
  ignore (Wal.append t.wal (Wal.Create_table { table = name; columns = Schema.columns schema }));
  table

let table t name = Hashtbl.find t.tables name
let table_opt t name = Hashtbl.find_opt t.tables name

let tables t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tables []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let begin_txn t =
  let id = t.next_txid in
  t.next_txid <- t.next_txid + 1;
  t.active <- t.active + 1;
  ignore (Wal.append t.wal (Wal.Begin id));
  { db = t; id; undos = []; finished = false }

let txn_id txn = txn.id

let check_live txn =
  if txn.finished then invalid_arg "Database: transaction already finished"

let find_table txn name =
  match table_opt txn.db name with
  | Some tbl -> Ok tbl
  | None -> Error (Printf.sprintf "no such table %S" name)

let ( let* ) = Result.bind

let insert txn ~table ~key row =
  check_live txn;
  let* tbl = find_table txn table in
  (* Log first (write-ahead), then apply. Validation happens in the table;
     on failure the log record is harmless because the txn would only ever
     replay if committed, and a failed op never commits that record's
     effect — but keep the log clean by validating before logging. *)
  match Schema.validate_row (Table.schema tbl) row with
  | Error e -> Error e
  | Ok () ->
      if Table.mem tbl ~key then Error (Printf.sprintf "duplicate key %S" key)
      else begin
        ignore (Wal.append txn.db.wal (Wal.Insert { txid = txn.id; table; key; row }));
        (match Table.insert tbl ~key row with
        | Ok () -> ()
        | Error e -> failwith ("Database.insert: validated insert failed: " ^ e));
        txn.undos <- Undo_insert { table; key } :: txn.undos;
        Ok ()
      end

let set_col txn ~table ~key ~col value =
  check_live txn;
  let* tbl = find_table txn table in
  let* before = Table.get_col tbl ~key ~col in
  ignore
    (Wal.append txn.db.wal (Wal.Update { txid = txn.id; table; key; col; before; after = value }));
  let* _old = Table.set_col tbl ~key ~col value in
  txn.undos <- Undo_update { table; key; col; before } :: txn.undos;
  Ok ()

let add_int txn ~table ~key ~col delta =
  check_live txn;
  let* tbl = find_table txn table in
  let* before = Table.get_col tbl ~key ~col in
  match Value.add_int before delta with
  | exception Invalid_argument e -> Error e
  | after ->
      ignore
        (Wal.append txn.db.wal (Wal.Update { txid = txn.id; table; key; col; before; after }));
      let* _old = Table.set_col tbl ~key ~col after in
      txn.undos <- Undo_update { table; key; col; before } :: txn.undos;
      Ok (match after with Value.Int n -> n | v -> int_of_float (Value.as_float v))

let delete txn ~table ~key =
  check_live txn;
  let* tbl = find_table txn table in
  match Table.get tbl ~key with
  | None -> Error (Printf.sprintf "no such key %S" key)
  | Some row ->
      ignore (Wal.append txn.db.wal (Wal.Delete { txid = txn.id; table; key; row }));
      ignore (Table.delete tbl ~key);
      txn.undos <- Undo_delete { table; key; row } :: txn.undos;
      Ok ()

(* Autocommit fast path for the single hottest mutation: one row lookup
   (Table.add_int_swap) instead of the get_col/set_col pair, no undo list,
   no txn record, and a single [Wal.Apply] record instead of the
   Begin/Update/Commit triple — committed by definition, and atomic under
   torn-tail recovery because one record is one log line. The record lands
   after the in-place add rather than before; within this function nothing
   can observe the gap (simulated crashes truncate the log between
   operations, never inside one). *)
let apply_int t ~table ~key ~col delta =
  match Hashtbl.find t.tables table with
  | exception Not_found -> Error (Printf.sprintf "no such table %S" table)
  | tbl -> (
      match Table.add_int_swap tbl ~key ~col delta with
      | Error e -> Error e
      | Ok (before, after) ->
          let txid = t.next_txid in
          t.next_txid <- txid + 1;
          ignore (Wal.append t.wal (Wal.Apply { txid; table; key; col; before; after }));
          Ok (match after with Value.Int n -> n | v -> int_of_float (Value.as_float v)))

let get t ~table ~key =
  match table_opt t table with None -> None | Some tbl -> Table.get tbl ~key

let mem t ~table ~key =
  match Hashtbl.find t.tables table with
  | exception Not_found -> false
  | tbl -> Table.mem tbl ~key

let get_col t ~table ~key ~col =
  match table_opt t table with
  | None -> Error (Printf.sprintf "no such table %S" table)
  | Some tbl -> Table.get_col tbl ~key ~col

let finish txn =
  txn.finished <- true;
  txn.db.active <- txn.db.active - 1

let commit txn =
  check_live txn;
  ignore (Wal.append txn.db.wal (Wal.Commit txn.id));
  finish txn

let abort txn =
  check_live txn;
  (* undos is newest-first, which is exactly reverse application order. *)
  List.iter
    (fun undo ->
      let tbl = table txn.db (match undo with
        | Undo_insert { table; _ } | Undo_update { table; _ } | Undo_delete { table; _ } -> table)
      in
      match undo with
      | Undo_insert { key; _ } -> ignore (Table.delete tbl ~key)
      | Undo_update { key; col; before; _ } -> (
          match Table.set_col tbl ~key ~col before with
          | Ok _ -> ()
          | Error e -> failwith ("Database.abort: undo failed: " ^ e))
      | Undo_delete { key; row; _ } -> (
          match Table.insert tbl ~key row with
          | Ok () -> ()
          | Error e -> failwith ("Database.abort: undo failed: " ^ e)))
    txn.undos;
  ignore (Wal.append txn.db.wal (Wal.Abort txn.id));
  finish txn

let active_txns t = t.active

let compact t =
  if t.active > 0 then invalid_arg "Database.compact: transactions active";
  let snapshot = Wal.create () in
  let txid = t.next_txid in
  t.next_txid <- t.next_txid + 1;
  List.iter
    (fun (tname, tbl) ->
      ignore
        (Wal.append snapshot
           (Wal.Create_table { table = tname; columns = Schema.columns (Table.schema tbl) })))
    (tables t);
  ignore (Wal.append snapshot (Wal.Begin txid));
  List.iter
    (fun (tname, tbl) ->
      Table.iter tbl (fun key row ->
          ignore (Wal.append snapshot (Wal.Insert { txid; table = tname; key; row }))))
    (tables t);
  ignore (Wal.append snapshot (Wal.Commit txid));
  (* Swap the snapshot in as the new history. *)
  Wal.truncate t.wal 0;
  List.iter (fun r -> ignore (Wal.append t.wal r)) (Wal.records snapshot)

let recover ?name wal =
  let db = create ?name () in
  let committed = Wal.committed_txids wal in
  let apply = function
    | Wal.Create_table { table = tname; columns } ->
        (* Not via [create_table]: replay must not re-log records, the whole
           input log is copied into the new WAL below. *)
        Hashtbl.add db.tables tname (Table.create ~name:tname (Schema.create columns))
    | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ()
    | Wal.Insert { txid; table = tname; key; row } ->
        if Hashtbl.mem committed txid then begin
          match Table.insert (table db tname) ~key row with
          | Ok () -> ()
          | Error e -> failwith ("Database.recover: replay insert: " ^ e)
        end
    | Wal.Update { txid; table = tname; key; col; after; _ } ->
        if Hashtbl.mem committed txid then begin
          match Table.set_col (table db tname) ~key ~col after with
          | Ok _ -> ()
          | Error e -> failwith ("Database.recover: replay update: " ^ e)
        end
    | Wal.Delete { txid; table = tname; key; _ } ->
        if Hashtbl.mem committed txid then ignore (Table.delete (table db tname) ~key)
    | Wal.Apply { table = tname; key; col; after; _ } -> (
        (* Committed by definition — no txid check. *)
        match Table.set_col (table db tname) ~key ~col after with
        | Ok _ -> ()
        | Error e -> failwith ("Database.recover: replay apply: " ^ e))
  in
  List.iter apply (Wal.records wal);
  (* The recovered instance logs onto a fresh WAL seeded with the replayed
     history, so a second crash recovers to at least this state. *)
  List.iter
    (fun r ->
      (match r with
      | Wal.Begin txid | Wal.Apply { txid; _ } ->
          db.next_txid <- Stdlib.max db.next_txid (txid + 1)
      | _ -> ());
      ignore (Wal.append db.wal r))
    (Wal.records wal);
  db

let save_file t ~path =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    (try output_string oc (Wal.to_string t.wal)
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e

(* Group-commit persistence: a sink remembers how much of the WAL it has
   already written and appends only the new suffix on each flush, so many
   transactions committed between flushes cost one write. Contrast with
   [save_file], which re-serialises the whole log every time. *)
module Sink = struct
  type sink = { path : string; mutable flushed_upto : int; buf : Buffer.t }

  let open_ t ~path =
    match
      let oc = open_out_bin path in
      (try output_string oc (Wal.to_string t.wal)
       with e ->
         close_out_noerr oc;
         raise e);
      close_out oc
    with
    | () -> Ok { path; flushed_upto = Wal.length t.wal; buf = Buffer.create 1024 }
    | exception Sys_error e -> Error e

  let flush sink t =
    let len = Wal.length t.wal in
    if len < sink.flushed_upto then
      (* The log was truncated or compacted below the flushed point; the
         appended file no longer prefixes the log, so rewrite it whole. *)
      match
        let oc = open_out_bin sink.path in
        (try output_string oc (Wal.to_string t.wal)
         with e ->
           close_out_noerr oc;
           raise e);
        close_out oc
      with
      | () ->
          sink.flushed_upto <- len;
          Ok ()
      | exception Sys_error e -> Error e
    else if len = sink.flushed_upto then Ok ()
    else begin
      Buffer.clear sink.buf;
      Wal.encode_suffix_into sink.buf t.wal ~from:sink.flushed_upto;
      match
        let oc = open_out_gen [ Open_append; Open_binary ] 0o644 sink.path in
        (try output_string oc (Buffer.contents sink.buf)
         with e ->
           close_out_noerr oc;
           raise e);
        close_out oc
      with
      | () ->
          sink.flushed_upto <- len;
          Ok ()
      | exception Sys_error e -> Error e
    end
end

let load_file ?name ~path () =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | exception Sys_error e -> Error e
  | contents -> (
      match Wal.of_string contents with
      | Error c -> Error (Printf.sprintf "%s:%d: %s" path c.Corruption.offset c.reason)
      | Ok wal -> (
          match recover ?name wal with
          | db -> Ok db
          | exception Failure e -> Error e))
