(** Write-ahead log.

    Every transactional mutation appends a record {e before} the in-memory
    table is touched; [Commit]/[Abort] markers close a transaction.
    Recovery ({!Database.recover}) replays records of committed
    transactions only. Records encode to single text lines, so a log can be
    serialised, truncated to simulate a crash, and replayed. *)

type record =
  | Create_table of { table : string; columns : Schema.column list }
  | Begin of int  (** transaction id *)
  | Insert of { txid : int; table : string; key : string; row : Value.t array }
  | Update of { txid : int; table : string; key : string; col : string; before : Value.t; after : Value.t }
  | Delete of { txid : int; table : string; key : string; row : Value.t array }
  | Commit of int
  | Abort of int
  | Apply of { txid : int; table : string; key : string; col : string; before : Value.t; after : Value.t }
      (** A complete single-operation committed transaction in one record —
          the autocommit write path ({!Database.apply_int}) logs this
          instead of a Begin/Update/Commit triple. Atomic by construction:
          a torn tail either keeps the whole update or none of it. *)

type t

val create : unit -> t

val append : t -> record -> int
(** Returns the record's log sequence number (0-based). *)

val length : t -> int
val records : t -> record list
(** In append order. *)

val nth : t -> int -> record

val truncate : t -> int -> unit
(** [truncate t n] keeps the first [n] records — simulates losing the log
    tail in a crash. *)

val committed_txids : t -> (int, unit) Hashtbl.t

val encode_record : record -> string

val encode_record_into : Buffer.t -> record -> unit
(** Appends exactly what {!encode_record} returns. *)

val decode_record : string -> (record, string) result

val to_string : t -> string
(** One record per line. Incremental: the log caches the encoding of its
    stable prefix, so calling this after every few appends costs the new
    suffix (plus a copy), not a full re-encode. [truncate] drops the
    cache. *)

val encode_suffix_into : Buffer.t -> t -> from:int -> unit
(** Appends records [from, length t) — group commit's flush primitive.
    Chunks written for successive [from] positions concatenate to exactly
    {!to_string}: every record after the log's first carries a leading
    newline separator. *)

val of_string : string -> (t, Corruption.t) result
(** Parses a serialised log. An undecodable {e final} line is treated as a
    tail torn by a crash mid-append and dropped — the decoded prefix is
    recovered. An undecodable line anywhere before the end is corruption
    and fails the whole parse with the offending byte offset. *)

val equal_record : record -> record -> bool
val pp_record : Format.formatter -> record -> unit
