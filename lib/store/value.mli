(** Typed cell values for the local database engine. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tbool

val type_of : t -> ty
val ty_name : ty -> string

val equal : t -> t -> bool
val compare : t -> t -> int

val add_int : t -> int -> t
(** [add_int (Int n) d = Int (n + d)]; [add_int (Float x) d] adds onto the
    float. Raises [Invalid_argument] on non-numeric values. *)

val as_int : t -> int
(** Raises [Invalid_argument] if the value is not an [Int]. *)

val as_float : t -> float
(** Accepts [Int] and [Float]. *)

val as_string : t -> string
val as_bool : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encode : t -> string
(** Reversible single-line encoding, used by the write-ahead log. *)

val encode_into : Buffer.t -> t -> unit
(** Appends exactly what {!encode} returns — the allocation-free spelling
    for bulk serialisation (hex escaping writes nibbles directly). *)

val decode : string -> (t, string) result
