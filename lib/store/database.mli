(** A local database: named tables, write-ahead logging, transactions.

    Transactional mutations log to the WAL before touching tables
    (write-ahead rule) and keep an in-memory undo list, so [abort] rolls
    the tables back and [recover] rebuilds exactly the committed state from
    the log — including after the log loses its tail in a simulated crash. *)

type t

type txn

val create : ?name:string -> unit -> t
val name : t -> string
val wal : t -> Wal.t

val create_table : t -> name:string -> Schema.t -> Table.t
(** Logged, so recovery recreates it. Raises [Invalid_argument] if the
    table exists. *)

val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option
val tables : t -> (string * Table.t) list
(** Sorted by name. *)

(** {2 Transactions}

    A [txn] must be finished with exactly one of [commit] or [abort];
    operations on a finished transaction raise [Invalid_argument]. *)

val begin_txn : t -> txn
val txn_id : txn -> int

val insert : txn -> table:string -> key:string -> Value.t array -> (unit, string) result
val set_col : txn -> table:string -> key:string -> col:string -> Value.t -> (unit, string) result

val add_int : txn -> table:string -> key:string -> col:string -> int -> (int, string) result
(** Returns the new column value. *)

val apply_int : t -> table:string -> key:string -> col:string -> int -> (int, string) result
(** Autocommit [add_int]: a complete single-operation transaction (the WAL
    records the usual Begin/Update/Commit triple) from one row lookup, with
    none of the per-[txn] bookkeeping. The write path of Delay Update. *)

val delete : txn -> table:string -> key:string -> (unit, string) result

val get : t -> table:string -> key:string -> Value.t array option
(** Reads see the latest (possibly uncommitted) state — concurrency control
    is the caller's job (see {!Lock_manager}). *)

val get_col : t -> table:string -> key:string -> col:string -> (Value.t, string) result

val mem : t -> table:string -> key:string -> bool
(** Key existence without materialising the row (no defensive copy). *)

val commit : txn -> unit
val abort : txn -> unit
(** Rolls back this transaction's effects in reverse order. *)

val active_txns : t -> int

val compact : t -> unit
(** Checkpoints the write-ahead log: replaces it with a minimal snapshot
    (table creations plus one committed transaction inserting every live
    row), discarding all history. Recovery from the compacted log yields
    exactly the current state. Raises [Invalid_argument] while any
    transaction is active. *)

(** {2 Recovery} *)

val recover : ?name:string -> Wal.t -> t
(** Rebuilds a database from a log: replays [Create_table] records and the
    operations of committed transactions, in log order. The rebuilt
    database's own WAL is a copy of the input log. *)

(** {2 Disk persistence}

    The write-ahead log {e is} the durable format: saving writes the log
    as text, loading recovers from it. *)

val save_file : t -> path:string -> (unit, string) result
(** Writes the WAL to [path] (atomically: temp file + rename). *)

(** Group-commit persistence: open a sink once, then [flush] after a batch
    of transactions — each flush appends only the WAL suffix written since
    the previous one, so a batch of commits costs a single file append.
    The file always equals {!save_file}'s output for the flushed prefix;
    {!load_file} reads it back (a torn tail from a crash mid-append is
    dropped by recovery as usual). If the log was truncated or compacted
    below the flushed point, the next flush rewrites the file whole. *)
module Sink : sig
  type sink

  val open_ : t -> path:string -> (sink, string) result
  (** Creates/overwrites [path] with the current log. *)

  val flush : sink -> t -> (unit, string) result
end

val load_file : ?name:string -> path:string -> unit -> (t, string) result
(** Reads a log written by {!save_file} and {!recover}s from it. *)
