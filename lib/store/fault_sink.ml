(* The faultable storage medium a durable log writes through.

   In the simulation the WAL and protocol log objects themselves survive
   a crash (they stand in for the disk). This sink models the disk
   underneath them: at a crash it captures the synced bytes as a
   Segmented image plus manifest, applies whatever faults were armed,
   and recovery then reads back through {!Segmented.recover} instead of
   trusting the in-memory log.

   The image is materialised lazily, only at a crash and only when
   faults are armed — the hot path appends nothing extra, so the
   fault layer costs nothing when disabled. *)

type t = {
  mutable armed : Disk_fault.spec list;
  mutable image : (Segmented.manifest * string list) option;
}

let create () = { armed = []; image = None }
let arm t spec = t.armed <- t.armed @ [ spec ]
let armed t = t.armed <> []

let split_lines s = if s = "" then [] else String.split_on_char '\n' s

(* Crash with the given synced log text: build the image and let every
   armed fault loose on it, in arming order. Disarms. *)
let crash t ~segment_frames ~text =
  if t.armed <> [] then begin
    let segments, manifest = Segmented.build ~segment_frames (split_lines text) in
    let segments = List.fold_left (fun segs f -> Disk_fault.apply f segs) segments t.armed in
    t.image <- Some (manifest, segments);
    t.armed <- []
  end

(* What recovery finds on disk, or [None] when no faulted image exists
   (the in-memory log is then authoritative, as before). One-shot: the
   recovered incarnation starts a fresh log. *)
let take_recovery t =
  match t.image with
  | None -> None
  | Some (manifest, segments) ->
      t.image <- None;
      Some (Segmented.recover manifest segments)
