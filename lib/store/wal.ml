type record =
  | Create_table of { table : string; columns : Schema.column list }
  | Begin of int
  | Insert of { txid : int; table : string; key : string; row : Value.t array }
  | Update of { txid : int; table : string; key : string; col : string; before : Value.t; after : Value.t }
  | Delete of { txid : int; table : string; key : string; row : Value.t array }
  | Commit of int
  | Abort of int
  | Apply of { txid : int; table : string; key : string; col : string; before : Value.t; after : Value.t }

type t = {
  mutable records : record list;
  mutable count : int;
  (* Serialisation cache: [enc] holds the encoding of the first [enc_upto]
     records, so repeated [to_string]/[output] calls after appends encode
     only the new suffix instead of the whole history. Invalidated by
     [truncate] (the only operation that rewrites history). *)
  enc : Buffer.t;
  mutable enc_upto : int;
}
(* Records are kept newest-first for O(1) append. *)

let create () = { records = []; count = 0; enc = Buffer.create 256; enc_upto = 0 }

let append t r =
  t.records <- r :: t.records;
  t.count <- t.count + 1;
  t.count - 1

let length t = t.count
let records t = List.rev t.records

let nth t i =
  if i < 0 || i >= t.count then invalid_arg "Wal.nth";
  List.nth t.records (t.count - 1 - i)

let truncate t n =
  if n < 0 || n > t.count then invalid_arg "Wal.truncate";
  let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
  t.records <- drop (t.count - n) t.records;
  t.count <- n;
  Buffer.reset t.enc;
  t.enc_upto <- 0

let committed_txids t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | Commit txid | Apply { txid; _ } -> Hashtbl.replace tbl txid ()
      | _ -> ())
    t.records;
  tbl

(* --- encoding --- *)

(* Fields are separated by '|'; strings (table names, keys, columns) are
   hex-escaped through Value.encode's Str case so the separator can never
   appear inside a field. *)
let enc_str_into buf s = Value.encode_into buf (Value.Str s)

let dec_str s =
  match Value.decode s with
  | Ok (Value.Str s) -> Ok s
  | Ok _ -> Error "expected string field"
  | Error e -> Error e

let enc_row_into buf row =
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Value.encode_into buf v)
    row

let dec_row s =
  if s = "" then Ok [||]
  else
    let parts = String.split_on_char ',' s in
    let rec loop acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> (
          match Value.decode p with Ok v -> loop (v :: acc) rest | Error e -> Error e)
    in
    loop [] parts

let ty_of_name = function
  | "int" -> Ok Value.Tint
  | "float" -> Ok Value.Tfloat
  | "string" -> Ok Value.Tstr
  | "bool" -> Ok Value.Tbool
  | s -> Error ("unknown type " ^ s)

let encode_record_into buf record =
  let tag c txid =
    Buffer.add_char buf c;
    Buffer.add_char buf '|';
    Buffer.add_string buf (string_of_int txid)
  in
  let field_str s =
    Buffer.add_char buf '|';
    enc_str_into buf s
  in
  match record with
  | Create_table { table; columns } ->
      Buffer.add_string buf "T";
      field_str table;
      Buffer.add_char buf '|';
      List.iteri
        (fun i { Schema.name; ty } ->
          if i > 0 then Buffer.add_char buf ',';
          enc_str_into buf name;
          Buffer.add_char buf '=';
          Buffer.add_string buf (Value.ty_name ty))
        columns
  | Begin txid -> tag 'B' txid
  | Insert { txid; table; key; row } ->
      tag 'I' txid;
      field_str table;
      field_str key;
      Buffer.add_char buf '|';
      enc_row_into buf row
  | Update { txid; table; key; col; before; after } ->
      tag 'U' txid;
      field_str table;
      field_str key;
      field_str col;
      Buffer.add_char buf '|';
      Value.encode_into buf before;
      Buffer.add_char buf '|';
      Value.encode_into buf after
  | Delete { txid; table; key; row } ->
      tag 'D' txid;
      field_str table;
      field_str key;
      Buffer.add_char buf '|';
      enc_row_into buf row
  | Commit txid -> tag 'C' txid
  | Abort txid -> tag 'A' txid
  | Apply { txid; table; key; col; before; after } ->
      tag 'P' txid;
      field_str table;
      field_str key;
      field_str col;
      Buffer.add_char buf '|';
      Value.encode_into buf before;
      Buffer.add_char buf '|';
      Value.encode_into buf after

let encode_record record =
  let buf = Buffer.create 64 in
  encode_record_into buf record;
  Buffer.contents buf

let ( let* ) = Result.bind

let int_field s =
  match int_of_string_opt s with Some n -> Ok n | None -> Error ("bad int " ^ s)

let decode_record line =
  match String.split_on_char '|' line with
  | [ "T"; table; cols ] ->
      let* table = dec_str table in
      let col_parts = if cols = "" then [] else String.split_on_char ',' cols in
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match String.index_opt p '=' with
            | None -> Error ("bad column spec " ^ p)
            | Some i ->
                let* name = dec_str (String.sub p 0 i) in
                let* ty = ty_of_name (String.sub p (i + 1) (String.length p - i - 1)) in
                loop ({ Schema.name; ty } :: acc) rest)
      in
      let* columns = loop [] col_parts in
      Ok (Create_table { table; columns })
  | [ "B"; txid ] ->
      let* txid = int_field txid in
      Ok (Begin txid)
  | [ "I"; txid; table; key; row ] ->
      let* txid = int_field txid in
      let* table = dec_str table in
      let* key = dec_str key in
      let* row = dec_row row in
      Ok (Insert { txid; table; key; row })
  | [ "U"; txid; table; key; col; before; after ] ->
      let* txid = int_field txid in
      let* table = dec_str table in
      let* key = dec_str key in
      let* col = dec_str col in
      let* before = Value.decode before in
      let* after = Value.decode after in
      Ok (Update { txid; table; key; col; before; after })
  | [ "D"; txid; table; key; row ] ->
      let* txid = int_field txid in
      let* table = dec_str table in
      let* key = dec_str key in
      let* row = dec_row row in
      Ok (Delete { txid; table; key; row })
  | [ "C"; txid ] ->
      let* txid = int_field txid in
      Ok (Commit txid)
  | [ "A"; txid ] ->
      let* txid = int_field txid in
      Ok (Abort txid)
  | [ "P"; txid; table; key; col; before; after ] ->
      let* txid = int_field txid in
      let* table = dec_str table in
      let* key = dec_str key in
      let* col = dec_str col in
      let* before = Value.decode before in
      let* after = Value.decode after in
      Ok (Apply { txid; table; key; col; before; after })
  | _ -> Error ("Wal.decode_record: malformed line " ^ line)

(* Bring the cache up to date: encode records [enc_upto, count) onto the
   tail of [enc]. The suffix is the first [count - enc_upto] elements of the
   newest-first list, reversed back into append order. *)
let refresh_cache t =
  if t.enc_upto < t.count then begin
    let rec take n l acc = if n = 0 then acc else take (n - 1) (List.tl l) (List.hd l :: acc) in
    let suffix = take (t.count - t.enc_upto) t.records [] in
    List.iter
      (fun r ->
        if Buffer.length t.enc > 0 then Buffer.add_char t.enc '\n';
        encode_record_into t.enc r)
      suffix;
    t.enc_upto <- t.count
  end

let to_string t =
  refresh_cache t;
  Buffer.contents t.enc

(* Group commit's flush primitive: records [from, length) as one encoded
   chunk, O(suffix) not O(log). Each record after the log's very first is
   preceded by its '\n' separator, so appending successive chunks to a file
   reproduces [to_string] byte for byte. *)
let encode_suffix_into buf t ~from =
  if from < 0 || from > t.count then invalid_arg "Wal.encode_suffix_into";
  let rec take n l acc = if n = 0 then acc else take (n - 1) (List.tl l) (List.hd l :: acc) in
  let suffix = take (t.count - from) t.records [] in
  List.iteri
    (fun i r ->
      if from + i > 0 then Buffer.add_char buf '\n';
      encode_record_into buf r)
    suffix

let of_string s =
  let t = create () in
  let lines = if s = "" then [] else String.split_on_char '\n' s in
  let rec loop offset = function
    | [] -> Ok t
    | line :: rest -> (
        match decode_record line with
        | Ok r ->
            ignore (append t r);
            loop (offset + String.length line + 1) rest
        (* An undecodable *final* line is a tail torn by a crash mid-append:
           recover the decoded prefix, exactly what replaying a physical log
           file does. Anywhere else it is corruption and must fail, located
           so the caller can report file:offset context. *)
        | Error _ when rest = [] -> Ok t
        | Error e -> Error (Corruption.v ~segment:0 ~offset e))
  in
  loop 0 lines

let equal_record a b =
  match (a, b) with
  | Create_table x, Create_table y -> x.table = y.table && x.columns = y.columns
  | Begin x, Begin y | Commit x, Commit y | Abort x, Abort y -> x = y
  | Insert x, Insert y ->
      x.txid = y.txid && x.table = y.table && x.key = y.key
      && Array.length x.row = Array.length y.row
      && Array.for_all2 Value.equal x.row y.row
  | Update x, Update y ->
      x.txid = y.txid && x.table = y.table && x.key = y.key && x.col = y.col
      && Value.equal x.before y.before && Value.equal x.after y.after
  | Apply x, Apply y ->
      x.txid = y.txid && x.table = y.table && x.key = y.key && x.col = y.col
      && Value.equal x.before y.before && Value.equal x.after y.after
  | Delete x, Delete y ->
      x.txid = y.txid && x.table = y.table && x.key = y.key
      && Array.length x.row = Array.length y.row
      && Array.for_all2 Value.equal x.row y.row
  | (Create_table _ | Begin _ | Insert _ | Update _ | Delete _ | Commit _ | Abort _ | Apply _), _
    ->
      false

let pp_record ppf r = Format.pp_print_string ppf (encode_record r)
