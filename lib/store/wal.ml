type record =
  | Create_table of { table : string; columns : Schema.column list }
  | Begin of int
  | Insert of { txid : int; table : string; key : string; row : Value.t array }
  | Update of { txid : int; table : string; key : string; col : string; before : Value.t; after : Value.t }
  | Delete of { txid : int; table : string; key : string; row : Value.t array }
  | Commit of int
  | Abort of int

type t = { mutable records : record list; mutable count : int }
(* Records are kept newest-first for O(1) append. *)

let create () = { records = []; count = 0 }

let append t r =
  t.records <- r :: t.records;
  t.count <- t.count + 1;
  t.count - 1

let length t = t.count
let records t = List.rev t.records

let nth t i =
  if i < 0 || i >= t.count then invalid_arg "Wal.nth";
  List.nth t.records (t.count - 1 - i)

let truncate t n =
  if n < 0 || n > t.count then invalid_arg "Wal.truncate";
  let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
  t.records <- drop (t.count - n) t.records;
  t.count <- n

let committed_txids t =
  let tbl = Hashtbl.create 64 in
  List.iter (function Commit txid -> Hashtbl.replace tbl txid () | _ -> ()) t.records;
  tbl

(* --- encoding --- *)

(* Fields are separated by '|'; strings (table names, keys, columns) are
   hex-escaped through Value.encode's Str case so the separator can never
   appear inside a field. *)
let enc_str s = Value.encode (Value.Str s)

let dec_str s =
  match Value.decode s with
  | Ok (Value.Str s) -> Ok s
  | Ok _ -> Error "expected string field"
  | Error e -> Error e

let enc_row row = String.concat "," (Array.to_list (Array.map Value.encode row))

let dec_row s =
  if s = "" then Ok [||]
  else
    let parts = String.split_on_char ',' s in
    let rec loop acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> (
          match Value.decode p with Ok v -> loop (v :: acc) rest | Error e -> Error e)
    in
    loop [] parts

let ty_of_name = function
  | "int" -> Ok Value.Tint
  | "float" -> Ok Value.Tfloat
  | "string" -> Ok Value.Tstr
  | "bool" -> Ok Value.Tbool
  | s -> Error ("unknown type " ^ s)

let encode_record = function
  | Create_table { table; columns } ->
      let cols =
        String.concat ","
          (List.map
             (fun { Schema.name; ty } -> enc_str name ^ "=" ^ Value.ty_name ty)
             columns)
      in
      Printf.sprintf "T|%s|%s" (enc_str table) cols
  | Begin txid -> Printf.sprintf "B|%d" txid
  | Insert { txid; table; key; row } ->
      Printf.sprintf "I|%d|%s|%s|%s" txid (enc_str table) (enc_str key) (enc_row row)
  | Update { txid; table; key; col; before; after } ->
      Printf.sprintf "U|%d|%s|%s|%s|%s|%s" txid (enc_str table) (enc_str key) (enc_str col)
        (Value.encode before) (Value.encode after)
  | Delete { txid; table; key; row } ->
      Printf.sprintf "D|%d|%s|%s|%s" txid (enc_str table) (enc_str key) (enc_row row)
  | Commit txid -> Printf.sprintf "C|%d" txid
  | Abort txid -> Printf.sprintf "A|%d" txid

let ( let* ) = Result.bind

let int_field s =
  match int_of_string_opt s with Some n -> Ok n | None -> Error ("bad int " ^ s)

let decode_record line =
  match String.split_on_char '|' line with
  | [ "T"; table; cols ] ->
      let* table = dec_str table in
      let col_parts = if cols = "" then [] else String.split_on_char ',' cols in
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match String.index_opt p '=' with
            | None -> Error ("bad column spec " ^ p)
            | Some i ->
                let* name = dec_str (String.sub p 0 i) in
                let* ty = ty_of_name (String.sub p (i + 1) (String.length p - i - 1)) in
                loop ({ Schema.name; ty } :: acc) rest)
      in
      let* columns = loop [] col_parts in
      Ok (Create_table { table; columns })
  | [ "B"; txid ] ->
      let* txid = int_field txid in
      Ok (Begin txid)
  | [ "I"; txid; table; key; row ] ->
      let* txid = int_field txid in
      let* table = dec_str table in
      let* key = dec_str key in
      let* row = dec_row row in
      Ok (Insert { txid; table; key; row })
  | [ "U"; txid; table; key; col; before; after ] ->
      let* txid = int_field txid in
      let* table = dec_str table in
      let* key = dec_str key in
      let* col = dec_str col in
      let* before = Value.decode before in
      let* after = Value.decode after in
      Ok (Update { txid; table; key; col; before; after })
  | [ "D"; txid; table; key; row ] ->
      let* txid = int_field txid in
      let* table = dec_str table in
      let* key = dec_str key in
      let* row = dec_row row in
      Ok (Delete { txid; table; key; row })
  | [ "C"; txid ] ->
      let* txid = int_field txid in
      Ok (Commit txid)
  | [ "A"; txid ] ->
      let* txid = int_field txid in
      Ok (Abort txid)
  | _ -> Error ("Wal.decode_record: malformed line " ^ line)

let to_string t = String.concat "\n" (List.map encode_record (records t))

let of_string s =
  let t = create () in
  let lines = if s = "" then [] else String.split_on_char '\n' s in
  let rec loop = function
    | [] -> Ok t
    | line :: rest -> (
        match decode_record line with
        | Ok r ->
            ignore (append t r);
            loop rest
        (* An undecodable *final* line is a tail torn by a crash mid-append:
           recover the decoded prefix, exactly what replaying a physical log
           file does. Anywhere else it is corruption and must fail. *)
        | Error _ when rest = [] -> Ok t
        | Error e -> Error e)
  in
  loop lines

let equal_record a b =
  match (a, b) with
  | Create_table x, Create_table y -> x.table = y.table && x.columns = y.columns
  | Begin x, Begin y | Commit x, Commit y | Abort x, Abort y -> x = y
  | Insert x, Insert y ->
      x.txid = y.txid && x.table = y.table && x.key = y.key
      && Array.length x.row = Array.length y.row
      && Array.for_all2 Value.equal x.row y.row
  | Update x, Update y ->
      x.txid = y.txid && x.table = y.table && x.key = y.key && x.col = y.col
      && Value.equal x.before y.before && Value.equal x.after y.after
  | Delete x, Delete y ->
      x.txid = y.txid && x.table = y.table && x.key = y.key
      && Array.length x.row = Array.length y.row
      && Array.for_all2 Value.equal x.row y.row
  | (Create_table _ | Begin _ | Insert _ | Update _ | Delete _ | Commit _ | Abort _), _ ->
      false

let pp_record ppf r = Format.pp_print_string ppf (encode_record r)
