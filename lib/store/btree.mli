(** In-memory B-tree keyed by strings.

    A classic B-tree (Knuth order [2*t]): every node except the root holds
    between [t-1] and [2t-1] keys; insertion splits full children on the
    way down, deletion merges/borrows on the way down, so both are
    single-pass. Used by {!Table} as its ordered primary index — sorted
    iteration and range scans without re-sorting — and available
    standalone. *)

type 'a t

val create : ?min_degree:int -> unit -> 'a t
(** [min_degree] is Knuth's [t] (default 8; minimum 2): nodes hold at most
    [2*t - 1] keys. Raises [Invalid_argument] if [min_degree < 2]. *)

val insert : 'a t -> key:string -> 'a -> unit
(** Adds or replaces the binding. *)

val find : 'a t -> key:string -> 'a option

val find_exn : 'a t -> key:string -> 'a
(** [find] without the option: raises [Not_found] on a miss. For hot point
    reads where the per-hit [Some] allocation is measurable. *)

val mem : 'a t -> key:string -> bool

val remove : 'a t -> key:string -> 'a option
(** Removes and returns the binding, if present. *)

val size : 'a t -> int

val min_binding : 'a t -> (string * 'a) option
val max_binding : 'a t -> (string * 'a) option

val iter : 'a t -> (string -> 'a -> unit) -> unit
(** In ascending key order. *)

val fold : 'a t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
(** In ascending key order. *)

val range : 'a t -> lo:string -> hi:string -> (string * 'a) list
(** Bindings with [lo <= key <= hi], ascending. *)

val keys : 'a t -> string list
(** Ascending. *)

val height : 'a t -> int
(** Levels from root to leaf (0 for an empty tree) — diagnostic. *)

val check_invariants : 'a t -> (unit, string) result
(** Verifies key ordering, node fill bounds and uniform leaf depth —
    test harness hook. *)
