type t = { segment : int; offset : int; reason : string }

let v ~segment ~offset reason = { segment; offset; reason }

let to_string { segment; offset; reason } =
  Printf.sprintf "segment %d, offset %d: %s" segment offset reason

let pp ppf c = Format.pp_print_string ppf (to_string c)
