type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tbool

let type_of = function
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstr
  | Bool _ -> Tbool

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstr -> "string"
  | Tbool -> "bool"

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | (Int _ | Float _ | Str _ | Bool _), _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float _, _ -> -1
  | _, Float _ -> 1
  | Str _, _ -> -1
  | _, Str _ -> 1

let add_int v d =
  match v with
  | Int n -> Int (n + d)
  | Float x -> Float (x +. float_of_int d)
  | Str _ | Bool _ ->
      invalid_arg (Printf.sprintf "Value.add_int: non-numeric %s" (ty_name (type_of v)))

let as_int = function
  | Int n -> n
  | v -> invalid_arg (Printf.sprintf "Value.as_int: %s" (ty_name (type_of v)))

let as_float = function
  | Int n -> float_of_int n
  | Float x -> x
  | v -> invalid_arg (Printf.sprintf "Value.as_float: %s" (ty_name (type_of v)))

let as_string = function
  | Str s -> s
  | v -> invalid_arg (Printf.sprintf "Value.as_string: %s" (ty_name (type_of v)))

let as_bool = function
  | Bool b -> b
  | v -> invalid_arg (Printf.sprintf "Value.as_bool: %s" (ty_name (type_of v)))

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v

(* Encoding: a type tag, ':', then the payload. Strings are hex-escaped so
   the encoding stays single-line regardless of content. *)
let hex_decode s =
  if String.length s mod 2 <> 0 then Error "odd hex length"
  else
    try
      Ok
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "bad hex"

let hex_digit = "0123456789abcdef"

let encode_into buf = function
  | Int n ->
      Buffer.add_string buf "i:";
      Buffer.add_string buf (string_of_int n)
  | Float x ->
      Buffer.add_string buf "f:";
      Buffer.add_string buf (Printf.sprintf "%h" x)
  | Str s ->
      Buffer.add_string buf "s:";
      String.iter
        (fun c ->
          let b = Char.code c in
          Buffer.add_char buf hex_digit.[b lsr 4];
          Buffer.add_char buf hex_digit.[b land 0xf])
        s
  | Bool b ->
      Buffer.add_string buf "b:";
      Buffer.add_string buf (string_of_bool b)

let encode v =
  match v with
  | Int n -> "i:" ^ string_of_int n
  | Bool b -> "b:" ^ string_of_bool b
  | Float _ | Str _ ->
      let buf = Buffer.create 24 in
      encode_into buf v;
      Buffer.contents buf

let decode s =
  match String.index_opt s ':' with
  | None -> Error ("Value.decode: missing tag in " ^ s)
  | Some i -> (
      let tag = String.sub s 0 i in
      let body = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "i" -> (
          match int_of_string_opt body with
          | Some n -> Ok (Int n)
          | None -> Error ("bad int: " ^ body))
      | "f" -> (
          match float_of_string_opt body with
          | Some x -> Ok (Float x)
          | None -> Error ("bad float: " ^ body))
      | "s" -> Result.map (fun s -> Str s) (hex_decode body)
      | "b" -> (
          match bool_of_string_opt body with
          | Some b -> Ok (Bool b)
          | None -> Error ("bad bool: " ^ body))
      | t -> Error ("unknown tag: " ^ t))
