(** A located storage-corruption verdict.

    Where damage was found in a serialised log: the segment index (0 for
    unsegmented single-file images), the byte offset of the offending
    record within that segment, and a human-readable reason. Parsers
    return this instead of a bare string so callers can quarantine the
    damaged region and report [file:offset] context. *)

type t = { segment : int; offset : int; reason : string }

val v : segment:int -> offset:int -> string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
