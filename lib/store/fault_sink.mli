(** The faultable storage medium a durable log writes through.

    Models the disk beneath a log that itself survives simulated
    crashes: at crash time the synced log text is captured as a
    {!Segmented} image, armed {!Disk_fault} specs are applied to it, and
    the next recovery reads back through {!Segmented.recover} instead of
    trusting the in-memory log. Costs nothing while no fault is armed —
    the image is built lazily at the crash. *)

type t

val create : unit -> t

val arm : t -> Disk_fault.spec -> unit
(** Queue a fault for the next crash. Faults apply in arming order and
    are consumed by the crash. *)

val armed : t -> bool

val crash : t -> segment_frames:int -> text:string -> unit
(** Capture the synced log [text] as a segmented image and apply every
    armed fault to it. No-op when nothing is armed. *)

val take_recovery : t -> Segmented.report option
(** The damage-classified read-back of the faulted image, or [None] when
    the last crash was fault-free. Consumes the image. *)
