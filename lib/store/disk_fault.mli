(** Injectable storage faults.

    Each spec is fully determined by its parameters — fractional
    positions are fixed when the schedule is generated — so applying one
    to a {!Segmented} image is deterministic, and a fault schedule
    shrinks by removing specs. *)

type spec =
  | Torn_tail  (** a partial, unsynced frame append survives at the tail *)
  | Lost_fsync of { frames : int }  (** the last synced frames never hit disk *)
  | Bit_flip of { pos : float }  (** one flipped bit at a fractional byte position *)
  | Misdirect of { pos : float }
      (** a block write lands at the wrong offset: one frame is overwritten
          by a copy of its successor *)
  | Lost_segment of { pos : float }  (** one whole segment is gone *)

val pp : Format.formatter -> spec -> unit

val apply : spec -> string list -> string list
(** Apply one fault to a segmented image (one string per segment).
    Deterministic; never raises. *)
