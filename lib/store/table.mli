(** A single keyed table: primary key (string) to row, schema-checked. *)

type t

val create : name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

val insert : t -> key:string -> Value.t array -> (unit, string) result
(** Fails if the key exists or the row does not match the schema. *)

val get : t -> key:string -> Value.t array option
(** A defensive copy: mutating the result does not affect the table. *)

val get_col : t -> key:string -> col:string -> (Value.t, string) result

val set_col : t -> key:string -> col:string -> Value.t -> (Value.t, string) result
(** Returns the previous value. Fails on a missing key, unknown column or
    type mismatch. *)

val add_int : t -> key:string -> col:string -> int -> (int, string) result
(** Adds a delta to a numeric column; returns the new value as int
    (truncated for float columns). *)

val add_int_swap : t -> key:string -> col:string -> int -> (Value.t * Value.t, string) result
(** Like {!add_int} but returns [(before, after)] from a single row
    lookup — the write path's fast primitive (the WAL needs both sides). *)

val delete : t -> key:string -> Value.t array option
(** Returns the removed row, or [None] if the key was absent. *)

val mem : t -> key:string -> bool
val size : t -> int
val keys : t -> string list
(** Sorted (the row store is an ordered B-tree). *)

val range : t -> lo:string -> hi:string -> (string * Value.t array) list
(** Rows with [lo <= key <= hi] in key order, as defensive copies. *)

val iter : t -> (string -> Value.t array -> unit) -> unit
val fold : t -> init:'a -> f:('a -> string -> Value.t array -> 'a) -> 'a

val copy : t -> t
(** Deep copy (snapshot), including secondary indexes. *)

(** {2 Secondary indexes}

    An index maps a column's values to the keys of the rows holding them,
    ordered by {!Value.compare}. Indexes are maintained automatically by
    every mutation ([insert], [set_col], [add_int], [delete]). *)

val create_index : t -> col:string -> (unit, string) result
(** Builds an index over existing rows. Fails on unknown columns or if
    the index already exists. *)

val drop_index : t -> col:string -> unit
val indexed_columns : t -> string list
(** Sorted. *)

val lookup_eq : t -> col:string -> Value.t -> string list option
(** Keys of rows whose column equals the value, sorted — [None] when the
    column has no index. *)

val lookup_range : t -> col:string -> ?lo:Value.t -> ?hi:Value.t -> unit -> string list option
(** Keys of rows with [lo <= column <= hi] (either bound optional),
    ordered by column value then key — [None] when not indexed. *)

val equal_contents : t -> t -> bool
(** Same keys and equal rows, schemas compared by column names/types. *)
