module Value_map = Map.Make (Value)
module String_set = Set.Make (String)

(* A secondary index: column value -> set of primary keys. Ordered by
   Value.compare so range lookups walk the map in value order. *)
type index = { pos : int; mutable entries : String_set.t Value_map.t }

(* Rows live in a B-tree keyed by primary key: point ops are O(log n) and
   ordered iteration / range scans come for free. *)
type t = {
  name : string;
  schema : Schema.t;
  rows : Value.t array Btree.t;
  indexes : (string, index) Hashtbl.t;
}

let create ~name schema =
  { name; schema; rows = Btree.create (); indexes = Hashtbl.create 4 }

let index_add idx value key =
  let existing = Option.value ~default:String_set.empty (Value_map.find_opt value idx.entries) in
  idx.entries <- Value_map.add value (String_set.add key existing) idx.entries

let index_remove idx value key =
  match Value_map.find_opt value idx.entries with
  | None -> ()
  | Some set ->
      let set = String_set.remove key set in
      idx.entries <-
        (if String_set.is_empty set then Value_map.remove value idx.entries
         else Value_map.add value set idx.entries)

(* Each of these is guarded by an index-count check: most tables carry no
   secondary indexes, and [Hashtbl.iter]'s closure would otherwise be
   allocated on every row mutation for nothing. *)
let indexes_on_insert t key row =
  if Hashtbl.length t.indexes > 0 then
    Hashtbl.iter (fun _ idx -> index_add idx row.(idx.pos) key) t.indexes

let indexes_on_delete t key row =
  if Hashtbl.length t.indexes > 0 then
    Hashtbl.iter (fun _ idx -> index_remove idx row.(idx.pos) key) t.indexes

let indexes_on_update t key ~pos ~before ~after =
  if Hashtbl.length t.indexes > 0 then
    Hashtbl.iter
      (fun _ idx ->
        if idx.pos = pos && not (Value.equal before after) then begin
          index_remove idx before key;
          index_add idx after key
        end)
      t.indexes
let name t = t.name
let schema t = t.schema

let insert t ~key row =
  if Btree.mem t.rows ~key then Error (Printf.sprintf "duplicate key %S" key)
  else
    match Schema.validate_row t.schema row with
    | Error e -> Error e
    | Ok () ->
        let stored = Array.copy row in
        Btree.insert t.rows ~key stored;
        indexes_on_insert t key stored;
        Ok ()

let get t ~key = Option.map Array.copy (Btree.find t.rows ~key)

let get_col t ~key ~col =
  match Btree.find t.rows ~key with
  | None -> Error (Printf.sprintf "no such key %S" key)
  | Some row -> (
      match Schema.index_opt t.schema col with
      | None -> Error (Printf.sprintf "no such column %S" col)
      | Some i -> Ok row.(i))

let set_col t ~key ~col value =
  match Btree.find t.rows ~key with
  | None -> Error (Printf.sprintf "no such key %S" key)
  | Some row -> (
      match Schema.index_opt t.schema col with
      | None -> Error (Printf.sprintf "no such column %S" col)
      | Some i ->
          if Value.type_of value <> Schema.column_ty t.schema col then
            Error
              (Printf.sprintf "column %S expects %s" col
                 (Value.ty_name (Schema.column_ty t.schema col)))
          else begin
            let old = row.(i) in
            row.(i) <- value;
            indexes_on_update t key ~pos:i ~before:old ~after:value;
            Ok old
          end)

let add_int_swap t ~key ~col delta =
  match Btree.find_exn t.rows ~key with
  | exception Not_found -> Error (Printf.sprintf "no such key %S" key)
  | row -> (
      match Schema.index t.schema col with
      | exception Not_found -> Error (Printf.sprintf "no such column %S" col)
      | i -> (
          match Value.add_int row.(i) delta with
          | exception Invalid_argument e -> Error e
          | v ->
              let before = row.(i) in
              row.(i) <- v;
              indexes_on_update t key ~pos:i ~before ~after:v;
              Ok (before, v)))

let add_int t ~key ~col delta =
  match add_int_swap t ~key ~col delta with
  | Error _ as e -> e
  | Ok (_, v) -> Ok (match v with Value.Int n -> n | v -> int_of_float (Value.as_float v))

let delete t ~key =
  match Btree.remove t.rows ~key with
  | None -> None
  | Some row ->
      indexes_on_delete t key row;
      Some row

let mem t ~key = Btree.mem t.rows ~key
let size t = Btree.size t.rows
let keys t = Btree.keys t.rows
let iter t f = Btree.iter t.rows f
let fold t ~init ~f = Btree.fold t.rows ~init ~f

let range t ~lo ~hi =
  List.map (fun (k, row) -> (k, Array.copy row)) (Btree.range t.rows ~lo ~hi)

let create_index t ~col =
  match Schema.index_opt t.schema col with
  | None -> Error (Printf.sprintf "no such column %S" col)
  | Some pos ->
      if Hashtbl.mem t.indexes col then Error (Printf.sprintf "index on %S exists" col)
      else begin
        let idx = { pos; entries = Value_map.empty } in
        Btree.iter t.rows (fun key row -> index_add idx row.(pos) key);
        Hashtbl.add t.indexes col idx;
        Ok ()
      end

let drop_index t ~col = Hashtbl.remove t.indexes col

let indexed_columns t =
  Hashtbl.fold (fun col _ acc -> col :: acc) t.indexes [] |> List.sort String.compare

let lookup_eq t ~col value =
  match Hashtbl.find_opt t.indexes col with
  | None -> None
  | Some idx ->
      Some
        (match Value_map.find_opt value idx.entries with
        | Some set -> String_set.elements set
        | None -> [])

let lookup_range t ~col ?lo ?hi () =
  match Hashtbl.find_opt t.indexes col with
  | None -> None
  | Some idx ->
      let in_lo v = match lo with None -> true | Some l -> Value.compare v l >= 0 in
      let in_hi v = match hi with None -> true | Some h -> Value.compare v h <= 0 in
      Some
        (Value_map.fold
           (fun v set acc ->
             if in_lo v && in_hi v then acc @ String_set.elements set else acc)
           idx.entries [])

let copy t =
  let rows = Btree.create () in
  Btree.iter t.rows (fun k row -> Btree.insert rows ~key:k (Array.copy row));
  let fresh = { name = t.name; schema = t.schema; rows; indexes = Hashtbl.create 4 } in
  List.iter
    (fun col ->
      match create_index fresh ~col with
      | Ok () -> ()
      | Error e -> failwith ("Table.copy: " ^ e))
    (indexed_columns t);
  fresh

let equal_contents a b =
  size a = size b
  && List.for_all
       (fun k ->
         match (get a ~key:k, get b ~key:k) with
         | Some ra, Some rb ->
             Array.length ra = Array.length rb
             && Array.for_all2 Value.equal ra rb
         | _ -> false)
       (keys a)
