(* Segmented, checksummed on-disk image of an append-only log.

   The log's record lines are framed (Frame), grouped into fixed-size
   segments, and each filled segment is sealed with a header carrying a
   CRC-32 over its whole body; the tail segment stays active:

     SEG|<idx>|<nframes>|<crc8hex>      sealed segment header
     ACT|<idx>                          active (tail) segment header
     <frame line> ...                   Frame.encode'd record lines

   A manifest — trusted metadata surviving the crash, like the sync
   counters and the protocol-log index — records how many segments and
   frames had been synced, so recovery can tell a torn tail (damage
   beyond the synced point: benign, recover the prefix) from real data
   loss or corruption (damage inside it). The manifest is
   compaction-aware by construction: it is rebuilt from the live log at
   every sync point, so a compacted log simply produces a fresh, shorter
   image and manifest. *)

type manifest = { segments : int; frames : int }

type damage = Torn_tail | Corrupt of Corruption.t | Missing_segment of int

let pp_damage ppf = function
  | Torn_tail -> Format.pp_print_string ppf "torn-tail"
  | Corrupt c -> Format.fprintf ppf "corrupt(%a)" Corruption.pp c
  | Missing_segment i -> Format.fprintf ppf "missing-segment(%d)" i

type report = {
  payloads : string list;  (** longest valid frame prefix, in log order *)
  damage : damage list;
  lost_frames : int;  (** synced frames that did not survive *)
}

let data_loss r = r.lost_frames > 0

let checksum_failures r =
  List.length (List.filter (function Corrupt _ -> true | _ -> false) r.damage)

(* --- building an image --- *)

let build ~segment_frames payloads =
  if segment_frames < 1 then invalid_arg "Segmented.build: segment_frames < 1";
  let frames = List.mapi (fun seq p -> Frame.encode ~seq p) payloads in
  let n = List.length frames in
  let nsegs = max 1 ((n + segment_frames - 1) / segment_frames) in
  let rec take k l =
    if k = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: tl ->
          let h, r = take (k - 1) tl in
          (x :: h, r)
  in
  let rec chunks idx frames =
    if idx = nsegs - 1 then
      (* The tail segment stays active: unsealed, so appends keep flowing. *)
      [ String.concat "\n" (Printf.sprintf "ACT|%d" idx :: frames) ]
    else
      let seg, rest = take segment_frames frames in
      let body = String.concat "\n" seg in
      let header =
        Printf.sprintf "SEG|%d|%d|%08x" idx (List.length seg) (Frame.crc32 body)
      in
      String.concat "\n" (header :: seg) :: chunks (idx + 1) rest
  in
  (chunks 0 frames, { segments = nsegs; frames = n })

(* --- recovering an image --- *)

(* Recovery collects the longest valid frame prefix and stops at the
   first damage. Classification is positional: a failure at a global
   frame index at or beyond [manifest.frames] is a torn tail (the damage
   sits past the last synced byte — benign); inside it, corruption. A
   header-only failure whose frames still all certify loses nothing.
   Never raises. *)

type cursor = {
  mutable seq : int;  (* next expected global frame index *)
  mutable acc : string list;  (* payloads, newest-first *)
  mutable dmg : damage list;  (* newest-first *)
  mutable stopped : bool;
}

type header_verdict = Header_ok | Header_damaged of string | Segment_gap

let parse_header ~segment ~body header =
  match String.split_on_char '|' header with
  | [ "SEG"; idx; _nframes; crc ] -> (
      match (int_of_string_opt idx, int_of_string_opt ("0x" ^ crc)) with
      | Some idx, _ when idx > segment -> Segment_gap
      | Some idx, Some crc when idx = segment ->
          if Frame.crc32 body = crc then Header_ok
          else Header_damaged "sealed-segment checksum mismatch"
      | _ -> Header_damaged "damaged segment header")
  | [ "ACT"; idx ] -> (
      match int_of_string_opt idx with
      | Some i when i = segment -> Header_ok
      | Some i when i > segment -> Segment_gap
      | _ -> Header_damaged "damaged segment header")
  | _ ->
      (* Unrecognisable — maybe bit-flipped, maybe the successor of a lost
         segment. Let the frames decide: their stamped sequence numbers
         reveal any gap. *)
      Header_damaged "damaged segment header"

let recover manifest segments =
  let cur = { seq = 0; acc = []; dmg = []; stopped = false } in
  let fail d =
    cur.dmg <- d :: cur.dmg;
    cur.stopped <- true
  in
  let scan_frames ~segment ~offset0 lines =
    let offset = ref offset0 in
    List.iter
      (fun line ->
        if not cur.stopped then begin
          (match Frame.decode ~expect_seq:cur.seq line with
          | Ok payload ->
              cur.acc <- payload :: cur.acc;
              cur.seq <- cur.seq + 1
          | Error e ->
              if cur.seq >= manifest.frames then fail Torn_tail
              else
                fail
                  (Corrupt
                     (Corruption.v ~segment ~offset:!offset (Frame.error_to_string e))));
          offset := !offset + String.length line + 1
        end)
      lines
  in
  let scan_segment segment seg_text =
    match if seg_text = "" then [] else String.split_on_char '\n' seg_text with
    | [] -> fail (Corrupt (Corruption.v ~segment ~offset:0 "empty segment"))
    | header :: frames -> (
        let body = String.concat "\n" frames in
        let offset0 = String.length header + 1 in
        match parse_header ~segment ~body header with
        | Segment_gap -> fail (Missing_segment segment)
        | Header_ok -> scan_frames ~segment ~offset0 frames
        | Header_damaged reason ->
            (* Salvage frame by frame; note the header damage only when the
               frames themselves all certify (losing nothing). *)
            let before = cur.stopped in
            scan_frames ~segment ~offset0 frames;
            if cur.stopped = before then
              cur.dmg <- Corrupt (Corruption.v ~segment ~offset:0 reason) :: cur.dmg)
  in
  List.iteri
    (fun segment seg_text ->
      if (not cur.stopped) && segment < manifest.segments then scan_segment segment seg_text)
    segments;
  if
    (not cur.stopped)
    && cur.seq < manifest.frames
    && List.length segments < manifest.segments
  then fail (Missing_segment (List.length segments));
  let payloads = List.rev cur.acc in
  {
    payloads;
    damage = List.rev cur.dmg;
    lost_frames = max 0 (manifest.frames - List.length payloads);
  }
