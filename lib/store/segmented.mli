(** Segmented, checksummed on-disk log images.

    Serialises a log's record lines into CRC-framed segments — sealed
    segments carry a whole-body checksum header, the tail segment stays
    active — and recovers the longest valid frame prefix from a possibly
    damaged image, classifying what it finds instead of raising.

    The {!manifest} is trusted metadata that survives the crash (like
    the protocol-log index): it pins how many segments and frames had
    been synced, which is what lets recovery tell a benign torn tail
    (damage beyond the synced point) from data loss or corruption inside
    it. It is compaction-aware by construction, being rebuilt from the
    live log at every sync point. *)

type manifest = { segments : int; frames : int }

type damage =
  | Torn_tail  (** damage past the last synced frame: prefix recovery, no loss *)
  | Corrupt of Corruption.t  (** checksum / framing failure inside the synced prefix *)
  | Missing_segment of int  (** a whole synced segment is gone *)

val pp_damage : Format.formatter -> damage -> unit

type report = {
  payloads : string list;  (** longest valid frame prefix, in log order *)
  damage : damage list;
  lost_frames : int;  (** synced frames that did not survive *)
}

val data_loss : report -> bool
val checksum_failures : report -> int

val build : segment_frames:int -> string list -> string list * manifest
(** [build ~segment_frames payloads] frames the payload lines and packs
    them into segment texts (one string per segment). Raises
    [Invalid_argument] if [segment_frames < 1]. *)

val recover : manifest -> string list -> report
(** Never raises: any mutation of a built image yields a prefix of the
    original payloads plus a damage classification. *)
