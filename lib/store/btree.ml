(* CLRS-style B-tree with minimum degree [t]: single-pass insert with
   preemptive splits, single-pass delete with borrow/merge on the way
   down. Nodes store keys/values in small sorted arrays; all array
   surgery is bounded by the node capacity [2t - 1]. *)

type 'a node = {
  mutable keys : string array;
  mutable values : 'a array;
  mutable children : 'a node array;  (* [||] for leaves; else length keys+1 *)
}

type 'a t = { t_min : int; mutable root : 'a node; mutable size : int }

let leaf () = { keys = [||]; values = [||]; children = [||] }
let is_leaf node = Array.length node.children = 0
let n_keys node = Array.length node.keys

let create ?(min_degree = 8) () =
  if min_degree < 2 then invalid_arg "Btree.create: min_degree must be >= 2";
  { t_min = min_degree; root = leaf (); size = 0 }

let size t = t.size

(* Index of the first key >= k, or n_keys if all smaller. *)
let lower_bound node k =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if String.compare node.keys.(mid) k < 0 then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (n_keys node)

let key_at_eq node i k = i < n_keys node && String.equal node.keys.(i) k

let rec find_in node ~key =
  let i = lower_bound node key in
  if key_at_eq node i key then Some node.values.(i)
  else if is_leaf node then None
  else find_in node.children.(i) ~key

let find t ~key = find_in t.root ~key

(* Allocation-free lookup for hot point reads (no [Some] per hit). *)
let rec find_in_exn node ~key =
  let i = lower_bound node key in
  if key_at_eq node i key then node.values.(i)
  else if is_leaf node then raise Not_found
  else find_in_exn node.children.(i) ~key

let find_exn t ~key = find_in_exn t.root ~key

let rec mem_in node ~key =
  let i = lower_bound node key in
  if key_at_eq node i key then true
  else if is_leaf node then false
  else mem_in node.children.(i) ~key

let mem t ~key = mem_in t.root ~key

(* --- array surgery helpers --- *)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let array_sub = Array.sub

(* --- insert --- *)

(* Split the full child [child = parent.children.(i)]: its median key moves
   up into [parent] at position [i]. *)
let split_child t parent i =
  let child = parent.children.(i) in
  let tm = t.t_min in
  let median_key = child.keys.(tm - 1) in
  let median_value = child.values.(tm - 1) in
  let right =
    {
      keys = array_sub child.keys tm (tm - 1);
      values = array_sub child.values tm (tm - 1);
      children = (if is_leaf child then [||] else array_sub child.children tm tm);
    }
  in
  child.keys <- array_sub child.keys 0 (tm - 1);
  child.values <- array_sub child.values 0 (tm - 1);
  if not (is_leaf child) then child.children <- array_sub child.children 0 tm;
  parent.keys <- array_insert parent.keys i median_key;
  parent.values <- array_insert parent.values i median_value;
  parent.children <- array_insert parent.children (i + 1) right

let rec insert_nonfull t node ~key value =
  let i = lower_bound node key in
  if key_at_eq node i key then node.values.(i) <- value (* replace *)
  else if is_leaf node then begin
    node.keys <- array_insert node.keys i key;
    node.values <- array_insert node.values i value;
    t.size <- t.size + 1
  end
  else begin
    let i =
      if n_keys node.children.(i) = (2 * t.t_min) - 1 then begin
        split_child t node i;
        (* the median moved up to position i; re-aim *)
        if key_at_eq node i key then begin
          node.values.(i) <- value;
          -1 (* handled: replaced the promoted key's value *)
        end
        else if String.compare key node.keys.(i) > 0 then i + 1
        else i
      end
      else i
    in
    if i >= 0 then insert_nonfull t node.children.(i) ~key value
  end

let insert t ~key value =
  if n_keys t.root = (2 * t.t_min) - 1 then begin
    let old_root = t.root in
    let new_root = { keys = [||]; values = [||]; children = [| old_root |] } in
    split_child t new_root 0;
    t.root <- new_root
  end;
  insert_nonfull t t.root ~key value

(* --- delete --- *)

let rec max_binding_of node =
  if is_leaf node then
    let n = n_keys node in
    if n = 0 then None else Some (node.keys.(n - 1), node.values.(n - 1))
  else max_binding_of node.children.(n_keys node)

let rec min_binding_of node =
  if is_leaf node then
    if n_keys node = 0 then None else Some (node.keys.(0), node.values.(0))
  else min_binding_of node.children.(0)

(* Merge children i and i+1 of [node] around separator key i. *)
let merge_children node i =
  let left = node.children.(i) and right = node.children.(i + 1) in
  left.keys <- Array.concat [ left.keys; [| node.keys.(i) |]; right.keys ];
  left.values <- Array.concat [ left.values; [| node.values.(i) |]; right.values ];
  if not (is_leaf left) then left.children <- Array.append left.children right.children;
  node.keys <- array_remove node.keys i;
  node.values <- array_remove node.values i;
  node.children <- array_remove node.children (i + 1)

(* Guarantee child i of [node] has >= t keys before descending, by
   borrowing from a sibling or merging. Returns the (possibly shifted)
   index of the child to descend into. *)
let ensure_child_big_enough t node i =
  let tm = t.t_min in
  let child = node.children.(i) in
  if n_keys child >= tm then i
  else if i > 0 && n_keys node.children.(i - 1) >= tm then begin
    (* borrow from left sibling through the separator *)
    let left = node.children.(i - 1) in
    let ln = n_keys left in
    child.keys <- array_insert child.keys 0 node.keys.(i - 1);
    child.values <- array_insert child.values 0 node.values.(i - 1);
    node.keys.(i - 1) <- left.keys.(ln - 1);
    node.values.(i - 1) <- left.values.(ln - 1);
    left.keys <- array_sub left.keys 0 (ln - 1);
    left.values <- array_sub left.values 0 (ln - 1);
    if not (is_leaf left) then begin
      child.children <- array_insert child.children 0 left.children.(ln);
      left.children <- array_sub left.children 0 ln
    end;
    i
  end
  else if i < n_keys node && n_keys node.children.(i + 1) >= tm then begin
    (* borrow from right sibling *)
    let right = node.children.(i + 1) in
    child.keys <- Array.append child.keys [| node.keys.(i) |];
    child.values <- Array.append child.values [| node.values.(i) |];
    node.keys.(i) <- right.keys.(0);
    node.values.(i) <- right.values.(0);
    right.keys <- array_remove right.keys 0;
    right.values <- array_remove right.values 0;
    if not (is_leaf right) then begin
      child.children <- Array.append child.children [| right.children.(0) |];
      right.children <- array_remove right.children 0
    end;
    i
  end
  else if i > 0 then begin
    merge_children node (i - 1);
    i - 1
  end
  else begin
    merge_children node i;
    i
  end

let rec delete_from t node ~key =
  let i = lower_bound node key in
  if key_at_eq node i key then begin
    if is_leaf node then begin
      let removed = node.values.(i) in
      node.keys <- array_remove node.keys i;
      node.values <- array_remove node.values i;
      Some removed
    end
    else begin
      let tm = t.t_min in
      let removed = node.values.(i) in
      if n_keys node.children.(i) >= tm then begin
        (* replace with predecessor, then delete the predecessor below *)
        match max_binding_of node.children.(i) with
        | Some (pk, pv) ->
            node.keys.(i) <- pk;
            node.values.(i) <- pv;
            ignore (delete_from t node.children.(i) ~key:pk);
            Some removed
        | None -> assert false
      end
      else if n_keys node.children.(i + 1) >= tm then begin
        match min_binding_of node.children.(i + 1) with
        | Some (sk, sv) ->
            node.keys.(i) <- sk;
            node.values.(i) <- sv;
            ignore (delete_from t node.children.(i + 1) ~key:sk);
            Some removed
        | None -> assert false
      end
      else begin
        merge_children node i;
        delete_from t node.children.(i) ~key
      end
    end
  end
  else if is_leaf node then None
  else begin
    (* A borrow only rotates keys strictly outside [key]'s gap and a merge
       pulls the (non-matching) separator down into the child we are about
       to visit, so the returned index is always the right one to follow. *)
    let i = ensure_child_big_enough t node i in
    delete_from t node.children.(i) ~key
  end

let remove t ~key =
  let removed = delete_from t t.root ~key in
  if removed <> None then t.size <- t.size - 1;
  (* shrink the root when it empties out *)
  if n_keys t.root = 0 && not (is_leaf t.root) then t.root <- t.root.children.(0);
  removed

(* --- traversal --- *)

let rec iter_node node f =
  if is_leaf node then
    for i = 0 to n_keys node - 1 do
      f node.keys.(i) node.values.(i)
    done
  else begin
    for i = 0 to n_keys node - 1 do
      iter_node node.children.(i) f;
      f node.keys.(i) node.values.(i)
    done;
    iter_node node.children.(n_keys node) f
  end

let iter t f = iter_node t.root f

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let keys t = List.rev (fold t ~init:[] ~f:(fun acc k _ -> k :: acc))
let min_binding t = min_binding_of t.root
let max_binding t = max_binding_of t.root

let range t ~lo ~hi =
  let rec collect node acc =
    if is_leaf node then begin
      let acc = ref acc in
      for i = n_keys node - 1 downto 0 do
        let k = node.keys.(i) in
        if String.compare lo k <= 0 && String.compare k hi <= 0 then
          acc := (k, node.values.(i)) :: !acc
      done;
      !acc
    end
    else begin
      (* visit children whose subtree can intersect [lo, hi] *)
      let acc = ref acc in
      for i = n_keys node downto 0 do
        let subtree_can_match =
          (i = 0 || String.compare node.keys.(i - 1) hi <= 0)
          && (i = n_keys node || String.compare lo node.keys.(i) <= 0)
        in
        (if i < n_keys node then begin
           let k = node.keys.(i) in
           if String.compare lo k <= 0 && String.compare k hi <= 0 then
             acc := (k, node.values.(i)) :: !acc
         end);
        if subtree_can_match then acc := collect node.children.(i) !acc
      done;
      !acc
    end
  in
  if String.compare lo hi > 0 then [] else collect t.root []

let rec height_of node = if is_leaf node then 1 else 1 + height_of node.children.(0)
let height t = if t.size = 0 then 0 else height_of t.root

let check_invariants t =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let leaf_depths = ref [] in
  let rec walk node ~depth ~is_root ~lo ~hi =
    let n = n_keys node in
    if (not is_root) && n < t.t_min - 1 then add "underfull node (%d keys) at depth %d" n depth;
    if n > (2 * t.t_min) - 1 then add "overfull node (%d keys)" n;
    for i = 0 to n - 2 do
      if String.compare node.keys.(i) node.keys.(i + 1) >= 0 then
        add "unsorted keys %S >= %S" node.keys.(i) node.keys.(i + 1)
    done;
    (match lo with
    | Some l ->
        if n > 0 && String.compare node.keys.(0) l <= 0 then
          add "key %S violates lower bound %S" node.keys.(0) l
    | None -> ());
    (match hi with
    | Some h ->
        if n > 0 && String.compare node.keys.(n - 1) h >= 0 then
          add "key %S violates upper bound %S" node.keys.(n - 1) h
    | None -> ());
    if is_leaf node then leaf_depths := depth :: !leaf_depths
    else begin
      if Array.length node.children <> n + 1 then
        add "child count %d for %d keys" (Array.length node.children) n;
      Array.iteri
        (fun i child ->
          let lo = if i = 0 then lo else Some node.keys.(i - 1) in
          let hi = if i = n then hi else Some node.keys.(i) in
          walk child ~depth:(depth + 1) ~is_root:false ~lo ~hi)
        node.children
    end
  in
  walk t.root ~depth:0 ~is_root:true ~lo:None ~hi:None;
  (match List.sort_uniq compare !leaf_depths with
  | [] | [ _ ] -> ()
  | depths -> add "leaves at different depths: %d distinct" (List.length depths));
  let counted = fold t ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  if counted <> t.size then add "size %d but %d bindings" t.size counted;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))
