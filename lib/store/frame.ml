(* Standard reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320),
   table-driven. Pinned by the classic known vector:
   crc32 "123456789" = 0xCBF43926. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let tbl = Lazy.force table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

(* A frame is one checksummed log record on its own text line:

     <crc:8 hex>|<seq>|<payload>

   The CRC covers "<seq>|<payload>", so a frame is self-certifying, and
   the global sequence number pins its position — a CRC-valid frame
   sitting at the wrong place (a misdirected or duplicated block write)
   is still detected. The payload is an encoded WAL/Txn_log record line,
   which never contains '\n'. *)

let encode ~seq payload =
  let body = string_of_int seq ^ "|" ^ payload in
  Printf.sprintf "%08x|%s" (crc32 body) body

type error = Malformed of string | Crc_mismatch | Seq_mismatch of { found : int }

let error_to_string = function
  | Malformed r -> "malformed frame: " ^ r
  | Crc_mismatch -> "frame checksum mismatch"
  | Seq_mismatch { found } -> Printf.sprintf "frame out of place (stamped seq %d)" found

(* Decode a frame line, checking the CRC and that its stamped sequence
   number equals [expect_seq]. Never raises. *)
let decode ~expect_seq line =
  let n = String.length line in
  if n < 10 || line.[8] <> '|' then Error (Malformed "missing checksum header")
  else
    match int_of_string_opt ("0x" ^ String.sub line 0 8) with
    | None -> Error (Malformed "bad checksum hex")
    | Some crc -> (
        let body = String.sub line 9 (n - 9) in
        if crc32 body <> crc then Error Crc_mismatch
        else
          match String.index_opt body '|' with
          | None -> Error (Malformed "missing sequence field")
          | Some i -> (
              match int_of_string_opt (String.sub body 0 i) with
              | None -> Error (Malformed "bad sequence field")
              | Some seq ->
                  if seq <> expect_seq then Error (Seq_mismatch { found = seq })
                  else Ok (String.sub body (i + 1) (String.length body - i - 1))))
