(* Injectable storage faults, applied to a Segmented image at crash
   time. Every spec is fully determined by its parameters (fractional
   positions are fixed at generation time), so a fault schedule is
   deterministic and shrinkable by removing specs. *)

type spec =
  | Torn_tail  (** a partial, unsynced frame append survives at the tail *)
  | Lost_fsync of { frames : int }  (** the last synced frames never hit disk *)
  | Bit_flip of { pos : float }  (** one flipped bit at a fractional byte position *)
  | Misdirect of { pos : float }
      (** a block write lands at the wrong offset: one frame is overwritten
          by a copy of its successor *)
  | Lost_segment of { pos : float }  (** one whole segment is gone *)

let pp ppf = function
  | Torn_tail -> Format.pp_print_string ppf "torn-tail"
  | Lost_fsync { frames } -> Format.fprintf ppf "lost-fsync(%d)" frames
  | Bit_flip { pos } -> Format.fprintf ppf "bit-flip(%.3f)" pos
  | Misdirect { pos } -> Format.fprintf ppf "misdirect(%.3f)" pos
  | Lost_segment { pos } -> Format.fprintf ppf "lost-segment(%.3f)" pos

let clamp01 f = if f < 0. then 0. else if f >= 1. then 0.999999 else f

let pick pos n = if n <= 0 then 0 else min (n - 1) (int_of_float (clamp01 pos *. float_of_int n))

(* Split a segment text into header + frame lines. Faults target frames;
   bit flips may hit anything. *)
let lines_of seg = if seg = "" then [] else String.split_on_char '\n' seg

let apply spec segments =
  match spec with
  | Torn_tail -> (
      match List.rev segments with
      | [] -> segments
      | last :: rev_rest -> List.rev ((last ^ "\ntorn") :: rev_rest))
  | Lost_fsync { frames = k } -> (
      (* Unsynced tail vanishes: drop up to [k] frame lines from the
         active segment (never its header). *)
      match List.rev segments with
      | [] -> segments
      | last :: rev_rest -> (
          match lines_of last with
          | [] -> segments
          | header :: frames ->
              let keep = max 0 (List.length frames - max 0 k) in
              let rec take n = function
                | x :: tl when n > 0 -> x :: take (n - 1) tl
                | _ -> []
              in
              let last' = String.concat "\n" (header :: take keep frames) in
              List.rev (last' :: rev_rest)))
  | Bit_flip { pos } ->
      let total = List.fold_left (fun a s -> a + String.length s) 0 segments in
      if total = 0 then segments
      else
        let target = pick pos total in
        let off = ref 0 in
        List.map
          (fun seg ->
            let len = String.length seg in
            let seg =
              if target >= !off && target < !off + len then begin
                let b = Bytes.of_string seg in
                let i = target - !off in
                Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (target mod 8))));
                Bytes.to_string b
              end
              else seg
            in
            off := !off + len;
            seg)
          segments
  | Misdirect { pos } ->
      (* Addresses of every frame line across the image. *)
      let frame_lines =
        List.concat_map
          (fun seg -> match lines_of seg with [] -> [] | _ :: frames -> frames)
          segments
      in
      let n = List.length frame_lines in
      if n < 2 then segments
      else
        let i = pick pos n in
        let j = (i + 1) mod n in
        let replacement = List.nth frame_lines j in
        let k = ref (-1) in
        List.map
          (fun seg ->
            match lines_of seg with
            | [] -> seg
            | header :: frames ->
                let frames =
                  List.map
                    (fun line ->
                      incr k;
                      if !k = i then replacement else line)
                    frames
                in
                String.concat "\n" (header :: frames))
          segments
  | Lost_segment { pos } ->
      let n = List.length segments in
      if n = 0 then segments
      else
        let drop = pick pos n in
        List.filteri (fun i _ -> i <> drop) segments
