(** Checksummed log frames.

    One frame is one log record on one text line, prefixed with a CRC-32
    over "<seq>|<payload>". The CRC certifies the bytes; the global
    sequence number certifies the position, so a CRC-valid frame written
    to the wrong place (misdirected or duplicated block write) still
    fails validation. *)

val crc32 : string -> int
(** Reflected CRC-32 (IEEE). [crc32 "123456789" = 0xCBF43926]. *)

val encode : seq:int -> string -> string
(** [encode ~seq payload] is ["<crc8hex>|<seq>|<payload>"]. The payload
    must not contain a newline. *)

type error = Malformed of string | Crc_mismatch | Seq_mismatch of { found : int }

val error_to_string : error -> string

val decode : expect_seq:int -> string -> (string, error) result
(** Validates the CRC and the stamped sequence number against
    [expect_seq], returning the payload. Never raises. *)
