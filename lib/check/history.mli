(** Execution histories for the consistency oracle.

    A history is the client-visible record of one run: every submitted
    operation as an {e invocation}/{e response} pair with virtual
    timestamps, plus the crash/recover fault events. The recorder is
    driven two ways, composable within one run:

    - the {{!wrappers} instrumented client wrappers} perform a site
      operation {e and} record both ends — the recommended way to drive a
      checked workload (the nemesis harness and [avdb_sim_cli --check] use
      these);
    - {!attach_trace} subscribes to the cluster's {!Avdb_sim.Trace.t} and
      captures crash/recover events from the ["fault"] category, so fault
      schedules injected by any driver appear in the history without
      explicit calls.

    Entries carry two orderings: virtual-time stamps (for intervals and
    real-time precedence) and a global record sequence ([inv_seq] /
    [resp_seq]) that breaks same-instant ties with the actual execution
    order of the single-threaded simulation. The checker's precedence
    relation is built on the sequence numbers. *)

type op =
  | Update of { item : string; delta : int }
      (** {!Avdb_core.Site.submit_update} — Delay, Immediate or Central
          depending on the item's class and the cluster mode; the response
          reports which path ran *)
  | Batch of { deltas : (string * int) list }
      (** {!Avdb_core.Site.submit_batch} — atomic multi-item Delay Update *)
  | Read_local of { item : string }
  | Read_auth of { item : string }

type resp =
  | Applied of Avdb_core.Update.kind
  | Rejected of Avdb_core.Update.reason
  | Read_value of int option
  | Read_failed of Avdb_core.Update.reason

type entry = {
  id : int;  (** dense, in invocation order *)
  site : int;
  op : op;
  inv_seq : int;  (** global record order of the invocation *)
  invoked_at : Avdb_sim.Time.t;
  mutable resp_seq : int;  (** global record order of the response; -1 while pending *)
  mutable responded_at : Avdb_sim.Time.t;  (** meaningful only once responded *)
  mutable resp : resp option;
  mutable n_responses : int;
      (** responses recorded; 0 = still pending, > 1 = double-fired
          continuation (itself a violation the checker reports) *)
}

type fault_kind = Crashed | Recovered
type fault = { f_site : int; f_at : Avdb_sim.Time.t; f_seq : int; f_kind : fault_kind }

type t

val create : unit -> t

val entries : t -> entry list
(** In invocation order. *)

val faults : t -> fault list
(** In record order. *)

val length : t -> int

(** {2 Low-level recording} *)

val invoke : t -> site:int -> at:Avdb_sim.Time.t -> op -> entry
val respond : t -> entry -> at:Avdb_sim.Time.t -> resp -> unit
val record_fault : t -> site:int -> at:Avdb_sim.Time.t -> fault_kind -> unit

(** {2:wrappers Instrumented client wrappers} *)

val submit_update :
  t ->
  engine:Avdb_sim.Engine.t ->
  Avdb_core.Site.t ->
  item:string ->
  delta:int ->
  (Avdb_core.Update.result -> unit) ->
  unit

val submit_batch :
  t ->
  engine:Avdb_sim.Engine.t ->
  Avdb_core.Site.t ->
  deltas:(string * int) list ->
  (Avdb_core.Update.result -> unit) ->
  unit

val read_local :
  t -> engine:Avdb_sim.Engine.t -> Avdb_core.Site.t -> item:string -> int option
(** Synchronous, like {!Avdb_core.Site.read_local}; the entry responds
    within the call. *)

val read_authoritative :
  t ->
  engine:Avdb_sim.Engine.t ->
  Avdb_core.Site.t ->
  item:string ->
  ((int option, Avdb_core.Update.reason) result -> unit) ->
  unit
(** The continuation may be swallowed by a crash (the underlying read is
    not crash-tracked); the entry is then left pending, which the checker
    treats as a no-op. *)

(** {2 Trace hook} *)

val attach_trace : t -> Avdb_sim.Trace.t -> Avdb_sim.Trace.subscription
(** Captures ["fault"]-category events ("siteN crashed" / "siteN
    recovered ...") as {!fault}s from now on. Unsubscribe with
    {!Avdb_sim.Trace.unsubscribe}. *)

val merge : t list -> t
(** Merges per-shard histories from a parallel run (one single-writer
    recorder per shard, listed in shard-rank order) into one totally
    ordered history: all invocations, responses and faults replayed
    sorted by (virtual time, shard rank, shard-local seq). Respects
    every shard's local order, preserves timestamps and double-response
    counts, renumbers entries — and is deterministic, so two same-seed
    parallel runs merge to identical histories. *)

val pp_op : Format.formatter -> op -> unit
val pp_resp : Format.formatter -> resp -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
(** The whole history, one line per entry — counterexample output. *)
