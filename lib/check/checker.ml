open Avdb_core

type snapshot = {
  mode : Config.mode;
  products : Product.t list;
  replicas : (string * int option list) list;
  bases : (string * int) list;
  books : (string * Model.books) list;
  granted : int;
  received : int;
  amnesiac : int list;
}

let snapshot_of_parts ~config ~topology ~sites =
  let site i = sites.(i) in
  let products = config.Config.products in
  let subscribers item = Topology.subscribers topology ~item in
  let bases =
    List.map
      (fun (p : Product.t) ->
        (p.Product.name, Topology.base_index topology ~item:p.Product.name))
      products
  in
  (* An item's replica holders, the base first: the convergence and
     virtual-final-read checks key on the head being the primary copy.
     Under partial replication only subscribers appear at all. A holder
     whose copy is quarantined after a storage fault is excluded: it
     rejects reads and votes Refuse, so its stale raw value is not
     client-visible state — corruption costs availability, never
     consistency. *)
  let holder_sites item =
    let base = Topology.base_index topology ~item in
    List.filter
      (fun i -> not (Site.is_quarantined (site i) ~item))
      (base :: List.filter (fun i -> i <> base) (subscribers item))
  in
  let replicas =
    List.map
      (fun (p : Product.t) ->
        let item = p.Product.name in
        ( item,
          List.map (fun i -> Site.amount_of (site i) ~item) (holder_sites item)
        ))
      products
  in
  let books =
    match config.Config.mode with
    | Config.Centralized -> []
    | Config.Autonomous ->
        List.filter_map
          (fun (p : Product.t) ->
            if not (Product.is_regular p) then None
            else
              let item = p.Product.name in
              let sum f =
                List.fold_left
                  (fun acc i -> acc + f (Site.av_table (site i)) ~item)
                  0 (subscribers item)
              in
              Some
                ( item,
                  {
                    Model.defined = sum Avdb_av.Av_table.defined_volume;
                    minted = sum Avdb_av.Av_table.minted;
                    consumed = sum Avdb_av.Av_table.consumed;
                    live = sum Avdb_av.Av_table.total;
                  } ))
          products
  in
  let granted =
    Array.fold_left
      (fun acc s -> acc + (Site.metrics s).Update.Metrics.av_volume_granted)
      0 sites
  in
  let received =
    Array.fold_left
      (fun acc s -> acc + (Site.metrics s).Update.Metrics.av_volume_received)
      0 sites
  in
  let amnesiac =
    List.filter (fun i -> Site.is_amnesiac sites.(i)) (List.init (Array.length sites) Fun.id)
  in
  { mode = config.Config.mode; products; replicas; bases; books; granted; received; amnesiac }

let snapshot_of_cluster cluster =
  snapshot_of_parts
    ~config:(Cluster.config cluster)
    ~topology:(Cluster.topology cluster)
    ~sites:(Cluster.sites cluster)

let snapshot_of_pcluster pcluster =
  snapshot_of_parts
    ~config:(Pcluster.config pcluster)
    ~topology:(Pcluster.topology pcluster)
    ~sites:(Pcluster.sites pcluster)

type violation =
  | Double_response of { entry : History.entry }
  | Non_linearizable of { item : string; ops : History.entry list }
  | Divergence of { item : string; values : int option list; expected : int option }
  | Negative_amount of { item : string; site : int; value : int }
  | Stale_read of { read : History.entry; item : string; value : int option }
  | Av_imbalance of { item : string option; message : string }

type stats = {
  n_entries : int;
  n_strong_items : int;
  n_lin_ops : int;
  lin_skipped : string list;
  n_replica_reads : int;
  n_reads_skipped : int;
}

type verdict = { violations : violation list; stats : stats }

let ok v = v.violations = []
let max_lin_ops = 62

(* --- history classification ------------------------------------------- *)

(* An item is "strong" when its updates run a coordinated protocol against
   the primary copy: every item in centralized mode, non-regular items in
   autonomous mode. Epoch-class items are neither strong nor Delay: their
   writers commit locally and the epoch sequencer totally orders intents
   after the fact, so they get their own quiescent-convergence rule below.
   Everything else is a Delay-Update (regular) item. *)
let strong_items mode products =
  List.filter_map
    (fun (p : Product.t) ->
      match mode with
      | Config.Centralized -> Some p.Product.name
      | Config.Autonomous ->
          if Product.is_regular p || Product.is_epoch p then None
          else Some p.Product.name)
    products

let epoch_items mode products =
  match mode with
  | Config.Centralized -> []
  | Config.Autonomous ->
      List.filter_map
        (fun (p : Product.t) ->
          if Product.is_epoch p then Some p.Product.name else None)
        products

(* Committed Delay Update deltas per item per origin site, in response
   order: [(item, (site, resp_seq, delta))]. Batch components count
   individually — the batch committed atomically, but replication carries
   them as ordinary per-item counters. *)
let delay_streams entries =
  let tbl : (string, (int * int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let push item site resp_seq delta =
    let r =
      match Hashtbl.find_opt tbl item with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add tbl item r;
          r
    in
    r := (site, resp_seq, delta) :: !r
  in
  List.iter
    (fun (e : History.entry) ->
      match (e.History.op, e.History.resp) with
      | ( History.Update { item; delta },
          Some (History.Applied (Update.Local | Update.With_transfer _)) ) ->
          push item e.History.site e.History.resp_seq delta
      | ( History.Batch { deltas },
          Some (History.Applied (Update.Local | Update.With_transfer _)) ) ->
          List.iter (fun (item, delta) -> push item e.History.site e.History.resp_seq delta)
            deltas
      | _ -> ())
    entries;
  Hashtbl.fold
    (fun item r acc ->
      ( item,
        List.sort (fun (_, a, _) (_, b, _) -> compare a b) (List.rev !r) )
      :: acc)
    tbl []

let stream_for streams item =
  match List.assoc_opt item streams with Some l -> l | None -> []

(* --- linearizability --------------------------------------------------- *)

type sem = Write of int | Failed_write of int | Read of int | Final of int

type lop = { sem : sem; inv : int; resp : int; definite : bool; entry : History.entry option }

let step value op =
  match op.sem with
  | Write d -> if value + d < 0 then None else Some (value + d)
  | Failed_write d -> if value + d < 0 then Some value else None
  | Read v | Final v -> if value = v then Some value else None

(* Wing & Gong search, memoized on the linearized set: deltas commute, so
   the set alone determines the register value and therefore the rest of
   the search. Ambiguous operations (resp = max_int) are optional: success
   is every *definite* operation linearized. *)
let linearizable ~initial ops =
  let n = Array.length ops in
  let full_definite = ref 0 in
  Array.iteri (fun i op -> if op.definite then full_definite := !full_definite lor (1 lsl i)) ops;
  let full_definite = !full_definite in
  let memo = Hashtbl.create 997 in
  let rec go taken value =
    if taken land full_definite = full_definite then true
    else if Hashtbl.mem memo taken then false
    else begin
      (* an op may linearize next iff no other unlinearized op responded
         before it was invoked *)
      let min_resp = ref max_int in
      for i = 0 to n - 1 do
        if taken land (1 lsl i) = 0 && ops.(i).resp < !min_resp then min_resp := ops.(i).resp
      done;
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < n do
        let j = !i in
        incr i;
        if taken land (1 lsl j) = 0 && ops.(j).inv < !min_resp then
          match step value ops.(j) with
          | Some value' -> if go (taken lor (1 lsl j)) value' then found := true
          | None -> ()
      done;
      if not !found then Hashtbl.add memo taken ();
      !found
    end
  in
  go 0 initial

(* Minimal failing prefix in completion order. Ambiguous operations ride
   along in every prefix — they are optional, so they only ever add
   explanations. *)
let minimal_prefix ~initial ops =
  let definite, ambiguous = List.partition (fun o -> o.definite) ops in
  let definite = List.sort (fun a b -> compare (a.resp, a.inv) (b.resp, b.inv)) definite in
  let rec go k =
    let prefix = List.filteri (fun i _ -> i < k) definite @ ambiguous in
    if not (linearizable ~initial (Array.of_list prefix)) then prefix
    else if k >= List.length definite then ops (* shouldn't happen; be total *)
    else go (k + 1)
  in
  go 1

(* [with_reads] holds in centralized mode, where the base applies updates
   synchronously on receipt and its replica is always a committed value. In
   autonomous mode 2PC participants install *tentative* writes at prepare
   time and reads take no locks, so a read during an in-doubt window
   legitimately sees uncommitted deltas — those reads get the weaker
   subset check below instead of a linearizability slot. *)
let strong_ops_for_item entries ~item ~base ~with_reads =
  List.filter_map
    (fun (e : History.entry) ->
      match e.History.op with
      | History.Update { item = i; delta } when String.equal i item -> (
          match e.History.resp with
          | Some (History.Applied (Update.Immediate | Update.Central)) ->
              Some
                {
                  sem = Write delta;
                  inv = e.History.inv_seq;
                  resp = e.History.resp_seq;
                  definite = true;
                  entry = Some e;
                }
          | Some (History.Rejected Update.Insufficient_stock) ->
              Some
                {
                  sem = Failed_write delta;
                  inv = e.History.inv_seq;
                  resp = e.History.resp_seq;
                  definite = true;
                  entry = Some e;
                }
          | Some (History.Rejected Update.Unreachable) | None ->
              (* the client never learned the fate: the write may have
                 committed behind its back, any time after invocation *)
              Some
                {
                  sem = Write delta;
                  inv = e.History.inv_seq;
                  resp = max_int;
                  definite = false;
                  entry = Some e;
                }
          | Some _ -> None)
      | History.Read_auth { item = i } when with_reads && String.equal i item -> (
          match e.History.resp with
          | Some (History.Read_value v) ->
              Some
                {
                  sem = Read (Option.value ~default:min_int v);
                  inv = e.History.inv_seq;
                  resp = e.History.resp_seq;
                  definite = true;
                  entry = Some e;
                }
          | _ -> None)
      | History.Read_local { item = i }
        when with_reads && String.equal i item && e.History.site = base -> (
          (* the base's local replica IS the primary copy in this mode *)
          match e.History.resp with
          | Some (History.Read_value v) ->
              Some
                {
                  sem = Read (Option.value ~default:min_int v);
                  inv = e.History.inv_seq;
                  resp = e.History.resp_seq;
                  definite = true;
                  entry = Some e;
                }
          | _ -> None)
      | _ -> None)
    entries

let check_strong_item ~entries ~replicas ~quiescent ~initial ~base ~with_reads item =
  let ops = strong_ops_for_item entries ~item ~base ~with_reads in
  let ops =
    if not quiescent then ops
    else
      (* the end-state primary copy must be the final value of some legal
         order: join the search as a virtual read that linearizes last *)
      match List.assoc_opt item replicas with
      | Some (Some base_value :: _) ->
          { sem = Final base_value; inv = max_int - 1; resp = max_int; definite = true; entry = None }
          :: ops
      | _ -> ops
  in
  if List.length ops > max_lin_ops then `Skipped
  else if linearizable ~initial (Array.of_list ops) then `Ok (List.length ops)
  else
    let prefix = minimal_prefix ~initial ops in
    `Violation
      (Non_linearizable { item; ops = List.filter_map (fun o -> o.entry) prefix })

(* --- replica reads (session + reachability) ---------------------------- *)

(* A replica's value for a Delay-Update item is always
   [initial + Σ_origin (prefix of that origin's committed delta stream)].
   For the site whose replica is being read, the prefix is pinned from
   below: every own delta committed before the read was invoked is
   visible (the apply is synchronous). For an authoritative read the
   "own" site is the base. *)
let check_replica_read ~streams ~initial ~(read : History.entry) ~item ~value ~self =
  match value with
  | None -> `Violation (Stale_read { read; item; value = None })
  | Some v ->
      let stream = stream_for streams item in
      let origins =
        List.sort_uniq compare (List.map (fun (site, _, _) -> site) stream)
      in
      let choice_lists =
        List.map
          (fun origin ->
            let deltas =
              List.filter_map
                (fun (site, resp_seq, delta) ->
                  if site = origin && resp_seq < read.History.resp_seq then Some (resp_seq, delta)
                  else None)
                stream
            in
            let min_len =
              if origin = self then
                List.length
                  (List.filter (fun (resp_seq, _) -> resp_seq < read.History.inv_seq) deltas)
              else 0
            in
            (* prefix sums of length >= min_len *)
            let _, _, sums =
              List.fold_left
                (fun (len, acc, sums) (_, d) ->
                  let acc = acc + d in
                  (len + 1, acc, if len + 1 >= min_len then acc :: sums else sums))
                (0, 0, if min_len = 0 then [ 0 ] else [])
                deltas
            in
            List.sort_uniq compare sums)
          origins
      in
      if List.exists (fun l -> l = []) choice_lists then
        (* min_len pruned everything *)
        `Violation (Stale_read { read; item; value = Some v })
      else
        match Model.sum_set choice_lists with
        | None -> `Skipped
        | Some reachable ->
            if List.mem (v - initial) reachable then `Ok
            else `Violation (Stale_read { read; item; value = Some v })

(* --- the check --------------------------------------------------------- *)

let check ?(quiescent = true) ~history snapshot =
  let entries = History.entries history in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let strong = strong_items snapshot.mode snapshot.products in
  let is_strong item = List.mem item strong in
  let epochs = epoch_items snapshot.mode snapshot.products in
  let is_epoch item = List.mem item epochs in
  let initial_of item =
    match List.find_opt (fun (p : Product.t) -> String.equal p.Product.name item) snapshot.products with
    | Some p -> Some p.Product.initial_amount
    | None -> None
  in
  let streams = delay_streams entries in
  (* the item's primary site; [] bases means the legacy single base 0 *)
  let base_of item = Option.value ~default:0 (List.assoc_opt item snapshot.bases) in

  (* 1. every continuation fires at most once *)
  List.iter
    (fun (e : History.entry) -> if e.History.n_responses > 1 then add (Double_response { entry = e }))
    entries;

  (* 2. linearizability of strong items *)
  let n_lin_ops = ref 0 in
  let lin_skipped = ref [] in
  List.iter
    (fun item ->
      match initial_of item with
      | None -> ()
      | Some initial -> (
          match
            check_strong_item ~entries ~replicas:snapshot.replicas ~quiescent ~initial
              ~base:(base_of item)
              ~with_reads:(snapshot.mode = Config.Centralized) item
          with
          | `Ok n -> n_lin_ops := !n_lin_ops + n
          | `Skipped -> lin_skipped := item :: !lin_skipped
          | `Violation v -> add v))
    strong;

  (* 3. replica reads: session guarantee + reachability *)
  let n_replica_reads = ref 0 in
  let n_reads_skipped = ref 0 in
  (* Weak check for reads of 2PC items in autonomous mode: the value may
     include tentative deltas of prepared-undecided transactions (reads
     take no locks), so we only require it be explicable as initial plus
     *some* subset of the writes invoked before the read responded. *)
  let check_strong_read ~(read : History.entry) ~item ~initial ~value =
    match value with
    | None when List.mem (base_of item) snapshot.amnesiac ->
        (* an amnesiac base quarantines its non-regular items after
           protocol-log loss and answers None while (or instead of)
           repairing — unavailability by design, not a stale value. A read
           issued pre-crash can be retried into the quarantine window, so
           fire-time gating at the injector cannot fully prevent these. *)
        `Skipped
    | None -> `Violation (Stale_read { read; item; value = None })
    | Some v -> (
        let deltas =
          List.filter_map
            (fun (w : History.entry) ->
              match w.History.op with
              | History.Update { item = i; delta }
                when String.equal i item && w.History.inv_seq < read.History.resp_seq -> (
                  match w.History.resp with
                  | Some (History.Applied (Update.Immediate | Update.Central))
                  | Some (History.Rejected (Update.Unreachable | Update.Txn_aborted))
                  | None ->
                      Some delta
                  | Some _ -> None)
              | _ -> None)
            entries
        in
        match Model.subset_sums deltas with
        | None -> `Skipped
        | Some sums ->
            if List.mem (v - initial) sums then `Ok
            else `Violation (Stale_read { read; item; value = Some v }))
  in
  (* Weak check for reads of epoch items: a replica exposes the prefix of
     sealed epochs it has applied, and an intent the client saw rejected
     (or never saw answered) may still seal later — so the value need only
     be initial plus *some* subset of the epoch writes invoked before the
     read responded. [None] from a quarantined/amnesiac holder is
     unavailability, not staleness. *)
  let check_epoch_read ~(read : History.entry) ~item ~initial ~value ~self =
    match value with
    | None when List.mem self snapshot.amnesiac -> `Skipped
    | None -> `Violation (Stale_read { read; item; value = None })
    | Some v -> (
        let deltas =
          List.filter_map
            (fun (w : History.entry) ->
              match w.History.op with
              | History.Update { item = i; delta }
                when String.equal i item && w.History.inv_seq < read.History.resp_seq -> (
                  match w.History.resp with
                  | Some (History.Applied Update.Epoch)
                  | Some (History.Rejected Update.Unreachable)
                  | None ->
                      Some delta
                  | Some _ -> None)
              | _ -> None)
            entries
        in
        match Model.subset_sums deltas with
        | None -> `Skipped
        | Some sums ->
            if List.mem (v - initial) sums then `Ok
            else `Violation (Stale_read { read; item; value = Some v }))
  in
  List.iter
    (fun (e : History.entry) ->
      let examine ~item ~self =
        if snapshot.mode = Config.Autonomous then
          match (initial_of item, e.History.resp) with
          | Some initial, Some (History.Read_value value) -> (
              let result =
                if is_strong item then check_strong_read ~read:e ~item ~initial ~value
                else if is_epoch item then
                  check_epoch_read ~read:e ~item ~initial ~value ~self
                else check_replica_read ~streams ~initial ~read:e ~item ~value ~self
              in
              match result with
              | `Ok -> incr n_replica_reads
              | `Skipped -> incr n_reads_skipped
              | `Violation v ->
                  incr n_replica_reads;
                  add v)
          | _ -> ()
      in
      match e.History.op with
      | History.Read_local { item } -> examine ~item ~self:e.History.site
      | History.Read_auth { item } -> examine ~item ~self:(base_of item)
      | _ -> ())
    entries;

  if quiescent then begin
    (* 4. convergence: regular replicas agree on exactly the model replay *)
    List.iter
      (fun (p : Product.t) ->
        let item = p.Product.name in
        if is_epoch item then begin
          (* Epoch items: every non-quarantined holder must expose the same
             sealed prefix, and the agreed value must be initial + every
             definitely-applied delta + some subset of the ambiguous ones
             (submissions rejected Unreachable or never answered — their
             intents may have sealed behind the client's back). Negative
             stock is legal by design: epoch writers never coordinate
             before committing. *)
          let values =
            match List.assoc_opt item snapshot.replicas with Some v -> v | None -> []
          in
          let definite = ref 0 in
          let ambiguous = ref [] in
          List.iter
            (fun (w : History.entry) ->
              match w.History.op with
              | History.Update { item = i; delta } when String.equal i item -> (
                  match w.History.resp with
                  | Some (History.Applied Update.Epoch) -> definite := !definite + delta
                  | Some (History.Rejected Update.Unreachable) | None ->
                      ambiguous := delta :: !ambiguous
                  | Some _ -> ())
              | _ -> ())
            entries;
          let floor = p.Product.initial_amount + !definite in
          match values with
          | [] -> ()
          | v0 :: rest ->
              if not (List.for_all (fun v -> v = v0) rest) then
                add (Divergence { item; values; expected = Some floor })
              else begin
                match v0 with
                | None -> add (Divergence { item; values; expected = Some floor })
                | Some v -> (
                    match Model.subset_sums !ambiguous with
                    | None -> () (* reachable set exceeded the cap: skip *)
                    | Some sums ->
                        if not (List.mem (v - floor) sums) then
                          add (Divergence { item; values; expected = Some floor }))
              end
        end
        else if not (is_strong item) then begin
          let values =
            match List.assoc_opt item snapshot.replicas with Some v -> v | None -> []
          in
          let expected =
            p.Product.initial_amount
            + List.fold_left (fun acc (_, _, d) -> acc + d) 0 (stream_for streams item)
          in
          List.iteri
            (fun site v ->
              match v with
              | Some v when v < 0 -> add (Negative_amount { item; site; value = v })
              | _ -> ())
            values;
          let agreed =
            match values with
            | [] -> true
            | v0 :: rest -> List.for_all (fun v -> v = v0) rest
          in
          if (not agreed) || List.exists (fun v -> v <> Some expected) values then
            add (Divergence { item; values; expected = Some expected })
        end
        else begin
          (* strong items: replicas must agree (the 2PC cohort is every
             site); the common value's legality is the virtual final read's
             job. In centralized mode only the base copy is maintained. *)
          match (snapshot.mode, List.assoc_opt item snapshot.replicas) with
          | Config.Autonomous, Some (v0 :: rest) when not (List.for_all (fun v -> v = v0) rest)
            ->
              add (Divergence { item; values = v0 :: rest; expected = None })
          | _ -> ()
        end)
      snapshot.products;

    (* 5. AV conservation: books balance and match the history *)
    let total_deficit = ref 0 in
    List.iter
      (fun (item, books) ->
        let d = Model.deficit books in
        total_deficit := !total_deficit + d;
        if d < 0 then
          add
            (Av_imbalance
               {
                 item = Some item;
                 message =
                   Printf.sprintf
                     "volume created out of thin air: defined %d + minted %d - consumed %d \
                      - live %d = %d"
                     books.Model.defined books.Model.minted books.Model.consumed
                     books.Model.live d;
               });
        let stream = stream_for streams item in
        let minted_hist =
          List.fold_left (fun acc (_, _, d) -> if d > 0 then acc + d else acc) 0 stream
        in
        let consumed_hist =
          List.fold_left (fun acc (_, _, d) -> if d < 0 then acc - d else acc) 0 stream
        in
        if books.Model.minted <> minted_hist then
          add
            (Av_imbalance
               {
                 item = Some item;
                 message =
                   Printf.sprintf
                     "ledger minted %d but the history committed +%d of positive Delay \
                      Updates"
                     books.Model.minted minted_hist;
               });
        if books.Model.consumed <> consumed_hist then
          add
            (Av_imbalance
               {
                 item = Some item;
                 message =
                   Printf.sprintf
                     "ledger consumed %d but the history committed -%d of negative Delay \
                      Updates"
                     books.Model.consumed consumed_hist;
               }))
      snapshot.books;
    if snapshot.books <> [] then begin
      let leaked = snapshot.granted - snapshot.received in
      if leaked < 0 then
        add
          (Av_imbalance
             {
               item = None;
               message =
                 Printf.sprintf "more AV received (%d) than granted (%d): volume conjured in \
                                 flight"
                   snapshot.received snapshot.granted;
             })
      else if !total_deficit <> leaked then
        add
          (Av_imbalance
             {
               item = None;
               message =
                 Printf.sprintf
                   "books are short %d units overall but the measured in-flight grant leak \
                    is %d (granted %d - received %d)"
                   !total_deficit leaked snapshot.granted snapshot.received;
             })
    end
  end;

  {
    violations = List.rev !violations;
    stats =
      {
        n_entries = History.length history;
        n_strong_items = List.length strong - List.length !lin_skipped;
        n_lin_ops = !n_lin_ops;
        lin_skipped = List.rev !lin_skipped;
        n_replica_reads = !n_replica_reads;
        n_reads_skipped = !n_reads_skipped;
      };
  }

(* --- printing ----------------------------------------------------------- *)

let pp_int_opt ppf = function
  | Some v -> Format.pp_print_int ppf v
  | None -> Format.pp_print_string ppf "-"

let pp_violation ppf = function
  | Double_response { entry } ->
      Format.fprintf ppf "@[<v 2>continuation fired %d times:@,%a@]" entry.History.n_responses
        History.pp_entry entry
  | Non_linearizable { item; ops } ->
      Format.fprintf ppf "@[<v 2>%s: no linearization admits these operations:@,%a@]" item
        (Format.pp_print_list History.pp_entry)
        ops
  | Divergence { item; values; expected } ->
      Format.fprintf ppf "@[<v 2>%s: replicas diverge at quiescence: [%a]%a@]" item
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_int_opt)
        values
        (fun ppf -> function
          | Some e -> Format.fprintf ppf " (model expects %d)" e
          | None -> ())
        expected
  | Negative_amount { item; site; value } ->
      Format.fprintf ppf "%s: site%d holds negative stock %d at quiescence" item site value
  | Stale_read { read; item; value } ->
      Format.fprintf ppf
        "@[<v 2>%s: read returned %a, outside the reachable set (missing own writes or \
         impossible prefix combination):@,%a@]"
        item pp_int_opt value History.pp_entry read
  | Av_imbalance { item; message } ->
      Format.fprintf ppf "AV conservation%a: %s"
        (fun ppf -> function Some i -> Format.fprintf ppf " (%s)" i | None -> ())
        item message

let pp_verdict ppf v =
  if ok v then
    Format.fprintf ppf
      "consistency oracle: OK (%d entries; %d strong ops over %d items linearizable; %d \
       replica reads in reachable sets%s%s)"
      v.stats.n_entries v.stats.n_lin_ops v.stats.n_strong_items v.stats.n_replica_reads
      (if v.stats.n_reads_skipped > 0 then
         Printf.sprintf "; %d reads skipped (cap)" v.stats.n_reads_skipped
       else "")
      (if v.stats.lin_skipped <> [] then
         Printf.sprintf "; %d items skipped (op cap)" (List.length v.stats.lin_skipped)
       else "")
  else
    Format.fprintf ppf "@[<v 2>consistency oracle: %d violation(s)@,%a@]"
      (List.length v.violations)
      (Format.pp_print_list pp_violation)
      v.violations
