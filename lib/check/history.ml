open Avdb_sim
open Avdb_core

type op =
  | Update of { item : string; delta : int }
  | Batch of { deltas : (string * int) list }
  | Read_local of { item : string }
  | Read_auth of { item : string }

type resp =
  | Applied of Update.kind
  | Rejected of Update.reason
  | Read_value of int option
  | Read_failed of Update.reason

type entry = {
  id : int;
  site : int;
  op : op;
  inv_seq : int;
  invoked_at : Time.t;
  mutable resp_seq : int;
  mutable responded_at : Time.t;
  mutable resp : resp option;
  mutable n_responses : int;
}

type fault_kind = Crashed | Recovered
type fault = { f_site : int; f_at : Time.t; f_seq : int; f_kind : fault_kind }

type t = {
  mutable seq : int;  (* shared by invocations, responses and faults *)
  mutable rev_entries : entry list;
  mutable n_entries : int;
  mutable rev_faults : fault list;
}

let create () = { seq = 0; rev_entries = []; n_entries = 0; rev_faults = [] }
let entries t = List.rev t.rev_entries
let faults t = List.rev t.rev_faults
let length t = t.n_entries

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let invoke t ~site ~at op =
  let e =
    {
      id = t.n_entries;
      site;
      op;
      inv_seq = next_seq t;
      invoked_at = at;
      resp_seq = -1;
      responded_at = at;
      resp = None;
      n_responses = 0;
    }
  in
  t.rev_entries <- e :: t.rev_entries;
  t.n_entries <- t.n_entries + 1;
  e

let respond t e ~at resp =
  e.n_responses <- e.n_responses + 1;
  (* Keep the first response; a second one is recorded only as a count —
     the checker reports it as a double-fired continuation. *)
  if e.n_responses = 1 then begin
    e.resp_seq <- next_seq t;
    e.responded_at <- at;
    e.resp <- Some resp
  end

let record_fault t ~site ~at f_kind =
  t.rev_faults <- { f_site = site; f_at = at; f_seq = next_seq t; f_kind } :: t.rev_faults

(* Merge per-shard histories from a parallel run into one totally
   ordered history. Each shard's seq numbers are a valid order for its
   own events and increase with virtual time, so replaying all events
   sorted by (time, shard, shard-local seq) yields a total order that
   respects every shard's local order and virtual time globally — and is
   deterministic, since ties across shards break by shard rank. Entries
   are renumbered; invocation/response timestamps and double-response
   counts are preserved verbatim. *)
let merge ts =
  let out = create () in
  let events =
    List.concat
      (List.mapi
         (fun shard t ->
           List.concat_map
             (fun e ->
               (e.invoked_at, shard, e.inv_seq, `Inv e)
               ::
               (match e.resp with
               | Some _ -> [ (e.responded_at, shard, e.resp_seq, `Resp e) ]
               | None -> []))
             (entries t)
           @ List.map (fun f -> (f.f_at, shard, f.f_seq, `Fault f)) (faults t))
         ts)
  in
  let events =
    List.sort
      (fun (t1, s1, q1, _) (t2, s2, q2, _) ->
        match Avdb_sim.Time.compare t1 t2 with
        | 0 -> compare (s1, q1) (s2, q2)
        | c -> c)
      events
  in
  let remap : (int * int, entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, shard, _, ev) ->
      match ev with
      | `Inv e ->
          let e' = invoke out ~site:e.site ~at:e.invoked_at e.op in
          Hashtbl.replace remap (shard, e.id) e'
      | `Resp e -> (
          let e' = Hashtbl.find remap (shard, e.id) in
          match e.resp with
          | Some r ->
              for _ = 1 to e.n_responses do
                respond out e' ~at:e.responded_at r
              done
          | None -> ())
      | `Fault f -> record_fault out ~site:f.f_site ~at:f.f_at f.f_kind)
    events;
  out

(* --- instrumented wrappers --- *)

let site_index site = Avdb_net.Address.to_int (Site.addr site)

let resp_of_outcome = function
  | Update.Applied k -> Applied k
  | Update.Rejected r -> Rejected r

let submit_update t ~engine site ~item ~delta k =
  let e = invoke t ~site:(site_index site) ~at:(Engine.now engine) (Update { item; delta }) in
  Site.submit_update site ~item ~delta (fun result ->
      respond t e ~at:(Engine.now engine) (resp_of_outcome result.Update.outcome);
      k result)

let submit_batch t ~engine site ~deltas k =
  let e = invoke t ~site:(site_index site) ~at:(Engine.now engine) (Batch { deltas }) in
  Site.submit_batch site ~deltas (fun result ->
      respond t e ~at:(Engine.now engine) (resp_of_outcome result.Update.outcome);
      k result)

let read_local t ~engine site ~item =
  let e = invoke t ~site:(site_index site) ~at:(Engine.now engine) (Read_local { item }) in
  let v = Site.read_local site ~item in
  respond t e ~at:(Engine.now engine) (Read_value v);
  v

let read_authoritative t ~engine site ~item k =
  let e = invoke t ~site:(site_index site) ~at:(Engine.now engine) (Read_auth { item }) in
  Site.read_authoritative site ~item (fun result ->
      (match result with
      | Ok v -> respond t e ~at:(Engine.now engine) (Read_value v)
      | Error r -> respond t e ~at:(Engine.now engine) (Read_failed r));
      k result)

(* --- trace hook --- *)

(* Fault trace messages are "siteN crashed" / "siteN recovered ..."
   (Address.pp followed by the verb); anything else in the category is
   ignored. *)
let parse_fault message =
  let prefix = "site" in
  let plen = String.length prefix in
  if String.length message <= plen || not (String.starts_with ~prefix message) then None
  else
    let rec digits i = if i < String.length message && message.[i] >= '0' && message.[i] <= '9' then digits (i + 1) else i in
    let stop = digits plen in
    if stop = plen then None
    else
      let site = int_of_string (String.sub message plen (stop - plen)) in
      let rest = String.sub message stop (String.length message - stop) in
      if String.starts_with ~prefix:" crashed" rest then Some (site, Crashed)
      else if String.starts_with ~prefix:" recovered" rest then Some (site, Recovered)
      else None

let attach_trace t trace =
  Trace.subscribe trace (fun (ev : Trace.event) ->
      if String.equal ev.Trace.category "fault" then
        match parse_fault ev.Trace.message with
        | Some (site, kind) -> record_fault t ~site ~at:ev.Trace.at kind
        | None -> ())

(* --- printing --- *)

let pp_op ppf = function
  | Update { item; delta } -> Format.fprintf ppf "update %s %+d" item delta
  | Batch { deltas } ->
      Format.fprintf ppf "batch [%s]"
        (String.concat "; " (List.map (fun (i, d) -> Printf.sprintf "%s %+d" i d) deltas))
  | Read_local { item } -> Format.fprintf ppf "read-local %s" item
  | Read_auth { item } -> Format.fprintf ppf "read-auth %s" item

let pp_resp ppf = function
  | Applied k -> Format.fprintf ppf "applied %a" Update.pp_kind k
  | Rejected r -> Format.fprintf ppf "rejected %a" Update.pp_reason r
  | Read_value (Some v) -> Format.fprintf ppf "value %d" v
  | Read_value None -> Format.fprintf ppf "value none"
  | Read_failed r -> Format.fprintf ppf "read failed %a" Update.pp_reason r

let pp_entry ppf e =
  Format.fprintf ppf "#%d site%d %a @@%a -> " e.id e.site pp_op e.op Time.pp e.invoked_at;
  match e.resp with
  | None -> Format.pp_print_string ppf "(pending)"
  | Some r ->
      Format.fprintf ppf "%a @@%a" pp_resp r Time.pp e.responded_at;
      if e.n_responses > 1 then Format.fprintf ppf " (x%d!)" e.n_responses

let pp ppf t =
  let evs =
    List.map (fun e -> (e.inv_seq, `E e)) (entries t)
    @ List.map (fun f -> (f.f_seq, `F f)) (faults t)
  in
  let evs = List.sort (fun (a, _) (b, _) -> compare a b) evs in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (_, ev) ->
      match ev with
      | `E e -> Format.fprintf ppf "%a@," pp_entry e
      | `F f ->
          Format.fprintf ppf "!! site%d %s @@%a@," f.f_site
            (match f.f_kind with Crashed -> "crashed" | Recovered -> "recovered")
            Time.pp f.f_at)
    evs;
  Format.fprintf ppf "@]"
