(** The executable reference model: one data item is an integer register
    with non-negative stock, plus an AV ledger that must balance exactly.

    This is the sequential specification the {!Checker} searches against.
    It is deliberately tiny — the paper's data model is "a numeric datum
    per item, updated by deltas, never oversold" — so every judgement the
    oracle makes reduces to these functions. *)

(** {2 Per-item register} *)

type register = { amount : int }

val init : int -> register

val apply : register -> delta:int -> register option
(** [None] when the update must be refused: the stock would go negative.
    A committed update in a valid history always steps with [Some]. *)

val read : register -> int

val replay : initial:int -> int list -> (int, int * int) result
(** Folds {!apply} over a delta sequence. [Error (i, amount)] names the
    first offending index and the amount it would have driven negative. *)

(** {2 AV ledger}

    Volume accounting summed over every site of a cluster. [defined] is
    the initially allocated volume, [minted] what positive Delay Updates
    created, [consumed] what negative Delay Updates destroyed, [live] what
    the AV tables currently hold (available + held). *)

type books = { defined : int; minted : int; consumed : int; live : int }

val deficit : books -> int
(** [defined + minted - consumed - live]: volume no longer anywhere. Must
    never be negative (volume created from nothing); positive volume must
    equal the measured in-flight grant leak. *)

val balance : books -> leaked:int -> (unit, string) result
(** Checks [deficit >= 0] and [deficit = leaked] with [leaked >= 0]. *)

(** {2 Reachable-value sets}

    Delay Updates propagate as per-origin cumulative counters, so a
    replica's value is always [initial + (a prefix of each origin's applied
    delta sequence, summed)]. These helpers build the reachable sets the
    convergence and session checks test membership in. *)

val prefix_sums : int list -> int list
(** [0 :: running sums], deduplicated, order unspecified. *)

val sum_set : ?cap:int -> int list list -> int list option
(** All sums picking one element per inner list. [None] when the set
    would exceed [cap] (default 200_000) — the caller should skip the
    check rather than guess. *)

val subset_sums : ?cap:int -> int list -> int list option
(** All sums of subsets of the given deltas, deduplicated. *)
