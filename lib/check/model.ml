type register = { amount : int }

let init amount = { amount }
let apply r ~delta = if r.amount + delta < 0 then None else Some { amount = r.amount + delta }
let read r = r.amount

let replay ~initial deltas =
  let rec go i r = function
    | [] -> Ok r.amount
    | d :: rest -> (
        match apply r ~delta:d with
        | Some r' -> go (i + 1) r' rest
        | None -> Error (i, r.amount))
  in
  go 0 (init initial) deltas

type books = { defined : int; minted : int; consumed : int; live : int }

let deficit b = b.defined + b.minted - b.consumed - b.live

let balance b ~leaked =
  let d = deficit b in
  if d < 0 then
    Error
      (Printf.sprintf
         "AV volume created out of thin air: defined %d + minted %d - consumed %d - live %d \
          = %d"
         b.defined b.minted b.consumed b.live d)
  else if leaked < 0 then
    Error (Printf.sprintf "more AV received than granted (%d units conjured in flight)" (-leaked))
  else if d <> leaked then
    Error
      (Printf.sprintf "AV ledger imbalance: books are short %d units but measured grant leak \
                       is %d"
         d leaked)
  else Ok ()

let dedup l =
  let tbl = Hashtbl.create (List.length l + 1) in
  List.filter
    (fun x ->
      if Hashtbl.mem tbl x then false
      else begin
        Hashtbl.add tbl x ();
        true
      end)
    l

let prefix_sums deltas =
  let _, rev =
    List.fold_left (fun (acc, sums) d -> (acc + d, (acc + d) :: sums)) (0, [ 0 ]) deltas
  in
  dedup rev

let sum_set ?(cap = 200_000) lists =
  let rec go acc = function
    | [] -> Some acc
    | choices :: rest ->
        let next = dedup (List.concat_map (fun x -> List.map (fun c -> x + c) choices) acc) in
        if List.length next > cap then None else go next rest
  in
  go [ 0 ] lists

let subset_sums ?cap deltas = sum_set ?cap (List.map (fun d -> [ 0; d ]) deltas)
