(** The history checker: judges one recorded run against the {!Model}.

    Given a {!History.t} (every client-visible operation, captured by the
    instrumented wrappers) and a {!snapshot} of the cluster's end state, the
    checker validates the three guarantees the paper's protocols owe their
    clients:

    - {b Linearizability of strong operations.} Immediate Updates,
      centralized-baseline updates and authoritative (base) reads of
      non-regular items must admit a total order consistent with real time
      in which every committed write steps the {!Model.register} legally and
      every read returns the register's value. The search is a Wing &
      Gong-style exhaustive interleaving, partitioned by item (updates are
      single-item, so items linearize independently) and memoized on the
      set of linearized operations (sound because deltas commute). An
      operation whose fate the client never learned — rejected
      [Unreachable] mid-2PC, or still pending — {e may} have committed and
      is placed optionally with an open-ended interval. The end-state base
      value joins the search as a virtual final read, so a committed write
      that is missing from the primary copy is caught even without a
      subsequent client read.

    - {b Convergence and AV conservation at quiescence.} Regular items
      must agree across every replica, and the agreed value must equal the
      model's replay of exactly the applied Delay Updates — no more, no
      less. The AV books must balance: defined + minted − consumed − live
      is never negative, equals the measured grant/receive leak in flight,
      and minted/consumed must equal what the history says positive and
      negative Delay Updates created and destroyed.

    - {b Session guarantees and replica-read validity.} A local read must
      reflect {e all} of the reading site's own earlier committed Delay
      Updates (read-your-writes) plus some per-origin {e prefix} of every
      other site's committed deltas (the cumulative sync counters make
      anything else unreachable). Authoritative reads of regular items obey
      the same rule with the base as the "own" site. A value outside the
      reachable set is a stale or corrupted read.

    - {b Epoch-quorum convergence.} Epoch-class items commit through the
      asynchronous epoch sequencer, so they are neither strong nor Delay:
      at quiescence every non-quarantined holder must expose the same
      sealed prefix, and the agreed value must equal initial + every
      definitely-applied delta ([Applied Epoch]) + some subset of the
      ambiguous ones (submissions rejected [Unreachable] or never
      answered — a logged intent can seal after the client gave up).
      Negative stock is legal for this class (writers never coordinate
      before committing), and reads get the weak subset check.

    Double-fired continuations are reported as violations in their own
    right. The checker assumes the history captured {e every} client
    operation of the run — drive workloads through the {!History}
    wrappers. *)

(** {2 End-state snapshot} *)

type snapshot = {
  mode : Avdb_core.Config.mode;
  products : Avdb_core.Product.t list;
  replicas : (string * int option list) list;
      (** per item, each {e replica-holding} site's value — the base's
          first, then the remaining subscribers in site order (every site,
          under full replication) *)
  bases : (string * int) list;
      (** per item, its base (primary) site index; [[]] means the legacy
          single base, site 0 — manual snapshots for flat topologies can
          leave it empty *)
  books : (string * Model.books) list;  (** per regular item, autonomous mode *)
  granted : int;  (** Σ sites' AV volume granted to peers *)
  received : int;  (** Σ sites' AV volume received from peers *)
  amnesiac : int list;
      (** sites that ever lost synced protocol-log records to a storage
          fault ({!Avdb_core.Site.is_amnesiac}). An authoritative read of a
          2PC item answered [None] by an amnesiac base is judged
          unavailability (the item was quarantined), not staleness.
          Quarantined replica holders are already excluded from
          [replicas]. [[]] for manual snapshots. *)
}

val snapshot_of_cluster : Avdb_core.Cluster.t -> snapshot
(** Reads replicas, AV ledgers and grant-flow counters from a cluster —
    take it at quiescence (after {!Avdb_core.Cluster.flush_all_syncs}). *)

val snapshot_of_pcluster : Avdb_core.Pcluster.t -> snapshot
(** Same, over a parallel cluster — quiescent-only (the domains must
    have joined; take it after {!Avdb_core.Pcluster.flush_all_syncs}). *)

val snapshot_of_parts :
  config:Avdb_core.Config.t ->
  topology:Avdb_core.Topology.t ->
  sites:Avdb_core.Site.t array ->
  snapshot
(** The generic form both of the above delegate to. *)

(** {2 Verdict} *)

type violation =
  | Double_response of { entry : History.entry }
      (** a continuation fired more than once *)
  | Non_linearizable of { item : string; ops : History.entry list }
      (** no legal total order exists; [ops] is the minimal
          (completion-order) failing prefix of the item's operations *)
  | Divergence of { item : string; values : int option list; expected : int option }
      (** at quiescence: replicas disagree, or agree on a value other than
          the model's replay ([expected], when the model pins one down) *)
  | Negative_amount of { item : string; site : int; value : int }
      (** a quiesced replica holds negative stock; [site] is the position
          in the snapshot's (base-first) replica list *)
  | Stale_read of { read : History.entry; item : string; value : int option }
      (** a replica read outside the reachable set: it misses the reading
          site's own committed writes, or shows a value no combination of
          per-origin prefixes can explain *)
  | Av_imbalance of { item : string option; message : string }
      (** the AV books do not balance ([item = None] for the cross-site
          grant-flow check) *)

type stats = {
  n_entries : int;
  n_strong_items : int;  (** items that went through the linearizability search *)
  n_lin_ops : int;  (** strong operations linearized *)
  lin_skipped : string list;  (** items skipped: > {!max_lin_ops} operations *)
  n_replica_reads : int;  (** local/authoritative replica reads validated *)
  n_reads_skipped : int;  (** reads skipped: reachable set exceeded the cap *)
}

type verdict = { violations : violation list; stats : stats }

val ok : verdict -> bool

val max_lin_ops : int
(** Per-item operation cap of the linearizability search (the memo is a
    bitmask): 62. Items beyond it are reported in [stats.lin_skipped]. *)

val check : ?quiescent:bool -> history:History.t -> snapshot -> verdict
(** Runs every check. [quiescent] (default [true]) states that the run
    drained to quiescence with all sites up, syncs force-flushed and
    in-doubt transactions resolved — the convergence, conservation and
    end-state checks are only sound then, and are skipped when [false]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_verdict : Format.formatter -> verdict -> unit
