type shard = { engine : Engine.t; drain : unit -> unit }

type stats = { rounds : int; end_time : Time.t }

(* Phase barrier on Mutex/Condition rather than a spin loop: rounds are
   few (idle windows are skipped on the grid), and blocking keeps
   oversubscribed hosts — more domains than cores — from burning a whole
   scheduling quantum per barrier. The last arriver runs [on_last] while
   the rest are parked, which is where the round decision (and the
   caller's serial hook) executes with exclusive access to all shards. *)
module Barrier = struct
  type t = {
    n : int;
    mutable arrived : int;
    mutable phase : int;
    mutex : Mutex.t;
    cond : Condition.t;
  }

  let create n = { n; arrived = 0; phase = 0; mutex = Mutex.create (); cond = Condition.create () }

  let await t ~on_last =
    Mutex.lock t.mutex;
    let phase = t.phase in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.n then begin
      on_last ();
      t.arrived <- 0;
      t.phase <- phase + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end
    else begin
      while t.phase = phase do
        Condition.wait t.cond t.mutex
      done;
      Mutex.unlock t.mutex
    end
end

type decision = Run_until of Time.t | Stop

let run ~window ?until ?(on_round = fun ~at:_ -> ()) shards =
  let n = Array.length shards in
  if n = 0 then invalid_arg "Parallel.run: no shards";
  let wus = Time.to_us window in
  if wus < 1 then invalid_arg "Parallel.run: window must be >= 1us";
  let barrier = Barrier.create n in
  let next_event = Array.make n None in
  let errors = Array.make n None in
  let decision = ref Stop in
  (* Common virtual clock: every engine's clock after round k equals the
     round's [until] (Engine.run aligns on drain/horizon), so one scalar
     describes them all between barriers. *)
  let floor = ref Time.zero in
  let rounds = ref 0 in
  let have_error () = Array.exists Option.is_some errors in
  let decide () =
    if have_error () then decision := Stop
    else begin
      (try on_round ~at:!floor
       with e -> errors.(0) <- Some (e, Printexc.get_raw_backtrace ()));
      if have_error () then decision := Stop
      else begin
        let next =
          Array.fold_left
            (fun acc t ->
              match (acc, t) with
              | None, t -> t
              | acc, None -> acc
              | Some a, Some b -> Some (Time.min a b))
            None next_event
        in
        decision :=
          (match (next, until) with
          | None, Some h when Time.(!floor < h) -> Run_until h
          | None, _ -> Stop
          | Some nx, Some h when Time.(nx > h) ->
              if Time.(!floor < h) then Run_until h else Stop
          | Some nx, horizon ->
              let start = Time.of_us (Time.to_us nx / wus * wus) in
              let u = Time.add start (Time.of_us (wus - 1)) in
              Run_until (match horizon with Some h -> Time.min u h | None -> u));
        match !decision with
        | Run_until u ->
            incr rounds;
            floor := u
        | Stop -> ()
      end
    end
  in
  let worker rank =
    let shard = shards.(rank) in
    let guard f =
      try f ()
      with e ->
        if errors.(rank) = None then errors.(rank) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let write_next () = next_event.(rank) <- Engine.next_time shard.engine in
    guard write_next;
    let continue = ref true in
    while !continue do
      Barrier.await barrier ~on_last:decide;
      match !decision with
      | Stop -> continue := false
      | Run_until u ->
          guard (fun () -> ignore (Engine.run ~until:u shard.engine));
          (* All shards have finished pushing into each other's inboxes
             before anyone drains. *)
          Barrier.await barrier ~on_last:(fun () -> ());
          guard (fun () -> shard.drain ());
          guard write_next
    done
  in
  let domains = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
  worker 0;
  Array.iter Domain.join domains;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  { rounds = !rounds; end_time = !floor }
