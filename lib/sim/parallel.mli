(** Conservative barrier-stepped parallel execution of sharded engines.

    Each shard owns one {!Engine.t} plus whatever single-domain state hangs
    off it; [run] drives all shards from their own OCaml domains in
    synchronized rounds. A round executes every shard independently over
    one half-open lookahead window [[S, S+window)] (the engine runs
    [~until:S+window-1us], so an event at the next window's start instant
    is never executed early), then meets at a barrier where each shard
    drains its cross-shard inbox — scheduling the messages other shards
    pushed during the window onto its own queue — before the next window
    is chosen.

    Correctness requirement (the conservative-PDES lookahead condition):
    every cross-shard message sent at virtual time [s] must be scheduled
    to arrive no earlier than [s + window]. Then a message pushed during
    window [[S, S+window)] always lands in the {e next} window or later,
    so draining at the barrier never delivers into a shard's past. The
    caller derives [window] from its minimum cross-shard latency.

    Windows advance on the fixed grid [{n * window}] and idle stretches
    are skipped in one hop: the next round starts at the largest grid
    point not beyond the earliest pending event anywhere. The schedule of
    rounds is therefore a pure function of the shards' event timings —
    same-seed runs take identical rounds regardless of interleaving,
    which is what makes the deterministic mode cheap.

    Between rounds all shards are quiescent at a common virtual instant;
    [on_round] runs exactly once there (on whichever domain reached the
    barrier last, while every other domain is parked), so it may read and
    mutate cross-shard state without synchronisation. *)

type shard = {
  engine : Engine.t;
  drain : unit -> unit;
      (** Drain this shard's inbox: schedule every pending cross-shard
          message onto [engine]. Called at each barrier, and only from
          the shard's own domain. *)
}

type stats = {
  rounds : int;  (** windows executed *)
  end_time : Time.t;  (** the common virtual clock at termination *)
}

val run : window:Time.t -> ?until:Time.t -> ?on_round:(at:Time.t -> unit) -> shard array -> stats
(** Runs the shards to quiescence, or to [until] (inclusive, matching
    {!Engine.run}: events at exactly [until] still execute; all engine
    clocks end aligned at [until]). [window] must be at least 1us.
    [on_round ~at] is the serial hook: invoked at every barrier decision
    point — including the final one — with the shards' common virtual
    clock. A single-shard array degenerates to [Engine.run] plus the
    hooks; an exception raised by any shard (or by [on_round]) stops all
    shards at the next barrier and is re-raised on the calling domain. *)
