(* Vyukov bounded MPMC ring used MPSC, plus a Treiber-stack overflow so a
   full ring degrades to lock-free-with-allocation instead of blocking or
   dropping. OCaml's memory model makes the publication safe: the plain
   [value] write happens before the [Atomic.set] on the cell sequence, so
   a consumer that observes the new sequence also observes the value. *)

type 'a msg = { rank : int; seq : int; payload : 'a }

type 'a cell = { state : int Atomic.t; mutable value : 'a msg option }

type 'a t = {
  mask : int;
  cells : 'a cell array;
  enqueue_pos : int Atomic.t;
  dequeue_pos : int Atomic.t;
  overflow : 'a msg list Atomic.t;
}

type 'a sender = { mb : 'a t; rank : int; mutable next_seq : int }

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(ring_capacity = 1024) () =
  let cap = pow2 (Stdlib.max 2 ring_capacity) 2 in
  {
    mask = cap - 1;
    cells = Array.init cap (fun i -> { state = Atomic.make i; value = None });
    enqueue_pos = Atomic.make 0;
    dequeue_pos = Atomic.make 0;
    overflow = Atomic.make [];
  }

let sender t ~rank =
  if rank < 0 then invalid_arg "Mailbox.sender: negative rank";
  { mb = t; rank; next_seq = 0 }

let rec push_overflow t msg =
  let old = Atomic.get t.overflow in
  if not (Atomic.compare_and_set t.overflow old (msg :: old)) then push_overflow t msg

(* [true] on success, [false] when the ring is full right now. *)
let rec try_enqueue t msg =
  let pos = Atomic.get t.enqueue_pos in
  let cell = t.cells.(pos land t.mask) in
  let diff = Atomic.get cell.state - pos in
  if diff = 0 then
    if Atomic.compare_and_set t.enqueue_pos pos (pos + 1) then begin
      cell.value <- Some msg;
      Atomic.set cell.state (pos + 1);
      true
    end
    else try_enqueue t msg
  else if diff < 0 then false
  else try_enqueue t msg

let push sender payload =
  let msg = { rank = sender.rank; seq = sender.next_seq; payload } in
  sender.next_seq <- sender.next_seq + 1;
  if not (try_enqueue sender.mb msg) then push_overflow sender.mb msg

(* Single consumer: no CAS needed on dequeue_pos, but the cell state
   round-trip still synchronises with producers. *)
let try_dequeue t =
  let pos = Atomic.get t.dequeue_pos in
  let cell = t.cells.(pos land t.mask) in
  let diff = Atomic.get cell.state - (pos + 1) in
  if diff = 0 then begin
    Atomic.set t.dequeue_pos (pos + 1);
    let v = cell.value in
    cell.value <- None;
    Atomic.set cell.state (pos + t.mask + 1);
    v
  end
  else None

let drain t =
  let acc = ref [] in
  let rec ring () =
    match try_dequeue t with
    | Some m ->
        acc := m :: !acc;
        ring ()
    | None -> ()
  in
  ring ();
  let overflowed = Atomic.exchange t.overflow [] in
  let all = List.rev_append overflowed !acc in
  List.map
    (fun (m : 'a msg) -> (m.rank, m.seq, m.payload))
    (List.sort
       (fun (a : 'a msg) (b : 'a msg) ->
         match Int.compare a.rank b.rank with 0 -> Int.compare a.seq b.seq | c -> c)
       all)

let is_empty t =
  Atomic.get t.enqueue_pos = Atomic.get t.dequeue_pos && Atomic.get t.overflow = []

let pushed sender = sender.next_seq
