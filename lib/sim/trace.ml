type level = Debug | Info | Warn

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"
let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

type event = { at : Time.t; level : level; category : string; message : string }

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int;  (* slot for the next write *)
  mutable count : int;  (* retained events, <= capacity *)
  mutable dropped : int;
  mutable next_subscription : int;
  mutable subscribers : (int * (event -> unit)) list;
}

type subscription = int

let create ?(capacity = 4096) () =
  let capacity = Stdlib.max 1 capacity in
  {
    capacity;
    buffer = Array.make capacity None;
    next = 0;
    count = 0;
    dropped = 0;
    next_subscription = 0;
    subscribers = [];
  }

let record t ~at ?(level = Info) ~category message =
  let event = { at; level; category; message } in
  if t.count = t.capacity then t.dropped <- t.dropped + 1 else t.count <- t.count + 1;
  t.buffer.(t.next) <- Some event;
  t.next <- (t.next + 1) mod t.capacity;
  List.iter (fun (_, f) -> f event) t.subscribers

let recordf t ~at ?level ~category fmt =
  Format.kasprintf (fun message -> record t ~at ?level ~category message) fmt

let events ?category ?min_level t =
  let keep e =
    (match category with Some c -> String.equal e.category c | None -> true)
    && match min_level with Some l -> level_rank e.level >= level_rank l | None -> true
  in
  let out = ref [] in
  (* oldest event sits at [next] when full, at 0 otherwise *)
  let start = if t.count = t.capacity then t.next else 0 in
  for i = 0 to t.count - 1 do
    match t.buffer.((start + i) mod t.capacity) with
    | Some e when keep e -> out := e :: !out
    | Some _ | None -> ()
  done;
  List.rev !out

let length t = t.count
let dropped t = t.dropped
let subscribe t f =
  let id = t.next_subscription in
  t.next_subscription <- id + 1;
  t.subscribers <- t.subscribers @ [ (id, f) ];
  id

let unsubscribe t subscription =
  t.subscribers <- List.filter (fun (id, _) -> id <> subscription) t.subscribers

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let merged_events ?category ?min_level traces =
  List.stable_sort
    (fun a b -> Time.compare a.at b.at)
    (List.concat_map (fun t -> events ?category ?min_level t) traces)

let pp_event ppf e =
  Format.fprintf ppf "[%a] %s %s: %s" Time.pp e.at (level_name e.level) e.category e.message
