type handle = Event_queue.handle

exception Stopped

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  mutable executed : int;
  mutable stop_requested : bool;
  root_rng : Rng.t;
}

type run_stats = { events_executed : int; end_time : Time.t; stopped_early : bool }

let create ?(seed = 42) () =
  {
    queue = Event_queue.create ();
    clock = Time.zero;
    executed = 0;
    stop_requested = false;
    root_rng = Rng.create seed;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t ~at f =
  if Time.(at < t.clock) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is in the past (now %a)" Time.pp at Time.pp
         t.clock);
  Event_queue.add t.queue ~time:at f

let schedule t ~delay f = schedule_at t ~at:(Time.add t.clock delay) f
let cancel _t h = Event_queue.cancel h
let stop t = t.stop_requested <- true

let execute_one t =
  match Event_queue.pop_exn t.queue with
  | exception Event_queue.Empty -> false
  | e ->
      t.clock <- Event_queue.entry_time e;
      t.executed <- t.executed + 1;
      Event_queue.entry_payload e ();
      true

let step t = execute_one t

let run ?until ?max_events t =
  t.stop_requested <- false;
  let start_executed = t.executed in
  let budget_hit () =
    match max_events with
    | None -> false
    | Some m -> t.executed - start_executed >= m
  in
  let over_horizon () =
    match until with
    | None -> false
    | Some horizon -> (
        match Event_queue.peek_time t.queue with
        | None -> false
        | Some next -> Time.(next > horizon))
  in
  let stopped = ref false in
  let continue = ref true in
  while !continue do
    if t.stop_requested || budget_hit () then begin
      stopped := true;
      continue := false
    end
    else if over_horizon () then begin
      (* Advance the clock to the horizon so repeated bounded runs compose:
         run ~until:a then ~until:b behaves like one run ~until:b. *)
      (match until with Some horizon -> t.clock <- Time.max t.clock horizon | None -> ());
      continue := false
    end
    else if not (execute_one t) then begin
      (match until with Some horizon -> t.clock <- Time.max t.clock horizon | None -> ());
      continue := false
    end
  done;
  {
    events_executed = t.executed - start_executed;
    end_time = t.clock;
    stopped_early = !stopped;
  }

let events_executed t = t.executed
let pending t = Event_queue.length t.queue
let next_time t = Event_queue.peek_time t.queue
