(** Structured event tracing for simulated components.

    A bounded ring buffer of timestamped events plus live subscribers.
    Components record events under a category ("av", "2pc", "fault", ...);
    tests and debugging tools filter by category/level or subscribe to see
    events as they happen. Recording is cheap and never raises; when the
    buffer is full the oldest events are dropped (and counted). *)

type level = Debug | Info | Warn

val level_name : level -> string

type event = {
  at : Time.t;
  level : level;
  category : string;
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained events (default 4096, minimum 1). *)

val record : t -> at:Time.t -> ?level:level -> category:string -> string -> unit
(** [level] defaults to [Info]. *)

val recordf :
  t ->
  at:Time.t ->
  ?level:level ->
  category:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted variant. *)

val events : ?category:string -> ?min_level:level -> t -> event list
(** Retained events, oldest first, optionally filtered. *)

val length : t -> int
(** Retained events. *)

val dropped : t -> int
(** Events evicted by the capacity bound over the trace's lifetime. *)

type subscription
(** Token identifying a registered subscriber. *)

val subscribe : t -> (event -> unit) -> subscription
(** Calls back on every future [record], in subscription order, until
    {!unsubscribe}d. *)

val unsubscribe : t -> subscription -> unit
(** Removes a subscriber. Unknown (or already removed) tokens are a
    no-op. *)

val clear : t -> unit
(** Drops retained events (subscribers and the dropped counter stay). *)

val pp_event : Format.formatter -> event -> unit
