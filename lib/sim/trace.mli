(** Structured event tracing for simulated components.

    A bounded ring buffer of timestamped events plus live subscribers.
    Components record events under a category ("av", "2pc", "fault", ...);
    tests and debugging tools filter by category/level or subscribe to see
    events as they happen. Recording is cheap and never raises; when the
    buffer is full the oldest events are dropped (and counted). *)

type level = Debug | Info | Warn

val level_name : level -> string

type event = {
  at : Time.t;
  level : level;
  category : string;
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained events (default 4096, minimum 1). *)

val record : t -> at:Time.t -> ?level:level -> category:string -> string -> unit
(** [level] defaults to [Info]. *)

val recordf :
  t ->
  at:Time.t ->
  ?level:level ->
  category:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted variant. *)

val events : ?category:string -> ?min_level:level -> t -> event list
(** Retained events, oldest first, optionally filtered. *)

val length : t -> int
(** Retained events. *)

val dropped : t -> int
(** Events evicted by the capacity bound over the trace's lifetime. *)

type subscription
(** Token identifying a registered subscriber. *)

val subscribe : t -> (event -> unit) -> subscription
(** Calls back on every future [record], in subscription order, until
    {!unsubscribe}d.

    Single-writer contract: a [Trace.t] — its ring, its subscriber list
    and the callbacks themselves — belongs to one domain. The parallel
    engine gives every shard its own trace (subscribers see only their
    shard's events, in that shard's deterministic order) and merges with
    {!merged_events} after the run joins. Subscribing to or recording
    into another domain's trace is a data race. *)

val unsubscribe : t -> subscription -> unit
(** Removes a subscriber. Unknown (or already removed) tokens are a
    no-op. *)

val clear : t -> unit
(** Drops retained events (subscribers and the dropped counter stay). *)

val merged_events : ?category:string -> ?min_level:level -> t list -> event list
(** Retained events of several single-domain traces merged by timestamp
    (stable: trace order preserved within an instant), optionally
    filtered — the deterministic view of a multi-shard run. *)

val pp_event : Format.formatter -> event -> unit
