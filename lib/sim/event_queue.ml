(* A cancelled handle must decrement the live count exactly once, and only
   while its entry is still in the heap — [in_queue] distinguishes "fired or
   already swept" from "still pending", so cancel after pop is a no-op. *)
type handle = { mutable cancelled : bool; mutable in_queue : bool; live : int ref }

type 'a entry = { time : Time.t; seq : int; payload : 'a; handle : handle }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots at index >= size are physically present but logically
     absent; a dummy entry fills slot 0 of a fresh queue until first use. *)
  mutable size : int;
  mutable next_seq : int;
  (* Count of live (non-cancelled, still-queued) entries, maintained
     eagerly so [is_empty]/[length] are O(1) instead of a heap scan.
     Shared with every handle: cancellation happens away from the queue. *)
  live : int ref;
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = ref 0 }

let entry_before a b =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && entry_before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time payload =
  let handle = { cancelled = false; in_queue = true; live = t.live } in
  let entry = { time; seq = t.next_seq; payload; handle } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  incr t.live;
  handle

let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    if h.in_queue then decr h.live
  end

let is_cancelled h = h.cancelled

let remove_root t =
  let root = t.heap.(0) in
  root.handle.in_queue <- false;
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  root

(* Discard cancelled entries sitting at the root: a cancel leaves its entry
   in the heap, so dead entries are skipped lazily when they surface. Their
   live-count decrement already happened at [cancel] time. *)
let rec drop_cancelled t =
  if t.size > 0 && t.heap.(0).handle.cancelled then begin
    ignore (remove_root t);
    drop_cancelled t
  end

exception Empty

let entry_time e = e.time
let entry_payload e = e.payload

(* The dispatch-loop pop: hands back the heap entry itself instead of
   re-wrapping it in an option and a tuple, so the per-event cost of the
   simulator's main loop is zero allocations. *)
let pop_exn t =
  drop_cancelled t;
  if t.size = 0 then raise Empty
  else begin
    let e = remove_root t in
    decr t.live;
    e
  end

let pop t =
  match pop_exn t with
  | exception Empty -> None
  | e -> Some (e.time, e.payload)

let peek_time t =
  drop_cancelled t;
  if t.size = 0 then None else Some t.heap.(0).time

let is_empty t = !(t.live) = 0
let length t = !(t.live)
let scheduled_total t = t.next_seq
