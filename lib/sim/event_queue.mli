(** Cancellable priority queue of timed events.

    A binary min-heap ordered by [(time, sequence)]; the sequence number
    makes dequeue order total and deterministic — two events scheduled for
    the same instant fire in scheduling order. Cancellation is O(1): the
    handle is flagged and the entry discarded lazily when it reaches the
    heap root, so cancelling never moves heap entries. *)

type 'a t

type handle
(** Identity of a scheduled event, usable to cancel it. *)

val create : unit -> 'a t

val add : 'a t -> time:Time.t -> 'a -> handle
(** Schedules a payload at an absolute time. *)

val cancel : handle -> unit
(** Cancels the event. Harmless if the event already fired or was already
    cancelled. *)

val is_cancelled : handle -> bool

val pop : 'a t -> (Time.t * 'a) option
(** Removes and returns the earliest live event, skipping cancelled
    entries. [None] if the queue holds no live events. *)

type 'a entry
(** A dequeued event: its fire time and payload. Entries are immutable
    once dequeued and safe to hold. *)

val entry_time : 'a entry -> Time.t
val entry_payload : 'a entry -> 'a

exception Empty

val pop_exn : 'a t -> 'a entry
(** [pop] without the option/tuple wrapping: returns the already-allocated
    heap entry, so the simulator's dispatch loop pops allocation-free.
    Raises {!Empty} when no live events remain. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest live event without removing it. *)

val is_empty : 'a t -> bool
(** True iff no live events remain. O(1): a live counter is maintained by
    [add]/[cancel]/[pop] rather than recomputed by scanning the heap. *)

val length : 'a t -> int
(** Number of live (non-cancelled) events. O(1). *)

val scheduled_total : 'a t -> int
(** Total number of [add]s over the queue's lifetime (diagnostic). *)
