(** Lock-free MPSC mailbox for cross-domain message exchange.

    The parallel engine gives every domain one inbox; any other domain may
    push into it concurrently through its own {!sender} handle, and the
    owning domain drains it single-threadedly at an epoch barrier.

    The fast path is a bounded Vyukov-style ring of [Atomic] sequence
    cells; when the ring is momentarily full, messages overflow onto a
    Treiber stack so a push {e never} blocks and {e never} loses a
    message. {!drain} merges both and returns the batch sorted by
    [(sender rank, per-sender sequence)] — a total order that is a
    deterministic function of what each sender pushed, independent of how
    the domains' pushes interleaved in real time. Per-sender FIFO is
    therefore exact, and cross-sender order is fixed by rank.

    Single-consumer contract: only the owning domain may call {!drain}.
    Senders are single-owner too — a [sender] handle carries the
    per-sender sequence counter and must stay on the domain it was made
    for. *)

type 'a t

type 'a sender

val create : ?ring_capacity:int -> unit -> 'a t
(** [ring_capacity] (default 1024, rounded up to a power of two, minimum
    2) bounds only the lock-free fast path; overflow is unbounded. *)

val sender : 'a t -> rank:int -> 'a sender
(** A push handle for one producing domain. [rank] must be unique among
    the mailbox's producers and fixes the cross-sender drain order. *)

val push : 'a sender -> 'a -> unit
(** Enqueues one message. Lock-free; safe to call concurrently with other
    senders' pushes and with the consumer's {!drain}. *)

val drain : 'a t -> (int * int * 'a) list
(** Removes and returns every message currently in the mailbox as
    [(rank, seq, payload)] sorted by [(rank, seq)]. Must only be called
    by the single consuming domain. Messages pushed concurrently with a
    drain land in either this batch or the next, never nowhere. *)

val is_empty : 'a t -> bool
(** Consumer-side emptiness check (approximate under concurrent pushes:
    may return [true] while a push is mid-flight). *)

val pushed : 'a sender -> int
(** Messages pushed through this handle so far. *)
