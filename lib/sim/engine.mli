(** Discrete-event simulation engine.

    Single virtual clock plus an event queue of closures. All simulated
    components share one engine; each schedules callbacks at future virtual
    instants and the engine executes them in deterministic [(time, seq)]
    order. Callbacks run to completion (no preemption), so state mutated by
    a callback is never observed half-written by another. *)

type t

type handle
(** A scheduled-event handle for cancellation. *)

exception Stopped
(** Raised internally when [stop] aborts the run loop. *)

val create : ?seed:int -> unit -> t
(** Fresh engine at time {!Time.zero}. [seed] (default 42) seeds the root
    {!Rng.t} from which components should [split] their own streams. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream. Prefer [Rng.split (Engine.rng e)] per
    component over drawing from the root directly. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule e ~delay f] runs [f] at [now e + delay]. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Runs at an absolute instant. Raises [Invalid_argument] if the instant is
    in the virtual past. *)

val cancel : t -> handle -> unit

type run_stats = {
  events_executed : int;
  end_time : Time.t;
  stopped_early : bool;  (** true iff [stop] was called or a limit hit *)
}

val run : ?until:Time.t -> ?max_events:int -> t -> run_stats
(** Executes events in order until the queue drains, virtual time would
    exceed [until], [max_events] callbacks have run, or [stop] is called.
    Events scheduled exactly at [until] still execute. Returns statistics
    for the run; can be called again to resume. *)

val step : t -> bool
(** Executes the single earliest event. [false] if the queue was empty. *)

val stop : t -> unit
(** From within a callback: abort the enclosing [run] after the current
    callback finishes. *)

val events_executed : t -> int
(** Total callbacks executed over the engine's lifetime. *)

val pending : t -> int
(** Number of live scheduled events. *)

val next_time : t -> Time.t option
(** Virtual instant of the earliest pending event, if any. The parallel
    runner's window decisions are built on this. *)
